//! A reference interpreter: executes dataflow graphs numerically.
//!
//! The performance models elsewhere in the workspace never touch values;
//! this module gives the IR *semantics*, so tests can check that graphs
//! compute what they claim (GEMMs multiply, softmax normalizes, transposes
//! move the right elements) and that graph transformations are
//! value-preserving. Data is `f32`; complex tensors store interleaved
//! `(re, im)` pairs. Source tensors without supplied values (weights,
//! metadata, generated twiddles) are synthesized deterministically from
//! the tensor id and a seed.
//!
//! This interpreter is for correctness at small sizes, not speed.

use crate::dtype::DType;
use crate::graph::{Graph, NodeId};
use crate::op::{BinaryKind, OpKind, ReduceKind, UnaryKind};
use crate::shape::Shape;
use crate::tensor::TensorId;
use std::collections::HashMap;

/// A materialized tensor value.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorData {
    pub shape: Shape,
    pub dtype: DType,
    /// Row-major values; complex dtypes hold `2 * elements` floats
    /// interleaved as `re, im`.
    pub values: Vec<f32>,
}

impl TensorData {
    /// Creates a real tensor, validating the element count.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` does not match the shape.
    pub fn new(shape: Shape, values: Vec<f32>) -> Self {
        assert_eq!(
            values.len() as u64,
            shape.elements(),
            "value count mismatch"
        );
        TensorData {
            shape,
            dtype: DType::Fp32,
            values,
        }
    }

    /// Floats per element for a dtype (2 for complex).
    fn lanes(dtype: DType) -> usize {
        match dtype {
            DType::ComplexBf16 => 2,
            _ => 1,
        }
    }

    fn zeros(shape: Shape, dtype: DType) -> Self {
        let n = shape.elements() as usize * Self::lanes(dtype);
        TensorData {
            shape,
            dtype,
            values: vec![0.0; n],
        }
    }

    fn is_complex(&self) -> bool {
        self.dtype == DType::ComplexBf16
    }
}

/// Interpreter errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The graph references an op/dtype combination the interpreter does
    /// not implement.
    Unsupported(String),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Deterministic pseudo-random fill for unsupplied source tensors.
fn synth_value(seed: u64, tensor: u32, index: usize) -> f32 {
    // SplitMix64 over (seed, tensor, index); mapped to roughly [-0.5, 0.5].
    let mut z = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add((tensor as u64) << 32)
        .wrapping_add(index as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    ((z >> 40) as f32 / (1u64 << 24) as f32) - 0.5
}

/// The interpreter.
#[derive(Debug, Clone)]
pub struct Interpreter {
    seed: u64,
}

impl Interpreter {
    pub fn new(seed: u64) -> Self {
        Interpreter { seed }
    }

    /// Evaluates the graph; `inputs` overrides any source tensor's value.
    /// Returns values for every tensor (sources and node outputs).
    ///
    /// # Errors
    ///
    /// [`InterpError::Unsupported`] on operator forms without numeric
    /// semantics here.
    pub fn run(
        &self,
        graph: &Graph,
        inputs: &HashMap<TensorId, TensorData>,
    ) -> Result<HashMap<TensorId, TensorData>, InterpError> {
        let mut env: HashMap<TensorId, TensorData> = HashMap::new();
        // Materialize sources.
        for t in graph.tensor_ids() {
            if graph.producer(t).is_some() {
                continue;
            }
            let def = graph.tensor(t);
            let data = match inputs.get(&t) {
                Some(d) => {
                    assert_eq!(
                        d.shape, def.shape,
                        "supplied shape mismatch for {}",
                        def.name
                    );
                    let mut d = d.clone();
                    d.dtype = def.dtype;
                    d
                }
                None => {
                    let mut d = TensorData::zeros(def.shape.clone(), def.dtype);
                    for (i, v) in d.values.iter_mut().enumerate() {
                        *v = synth_value(self.seed, t.index() as u32, i);
                    }
                    d
                }
            };
            env.insert(t, data);
        }
        // Execute in topological (insertion) order.
        for nid in graph.node_ids() {
            let out = self.eval_node(graph, nid, &env)?;
            env.insert(graph.node(nid).output, out);
        }
        Ok(env)
    }

    /// Evaluates the graph and returns just the marked outputs.
    ///
    /// # Errors
    ///
    /// Propagates [`InterpError`] from [`Interpreter::run`].
    pub fn run_outputs(
        &self,
        graph: &Graph,
        inputs: &HashMap<TensorId, TensorData>,
    ) -> Result<Vec<TensorData>, InterpError> {
        let env = self.run(graph, inputs)?;
        Ok(graph
            .outputs()
            .into_iter()
            .map(|t| env[&t].clone())
            .collect())
    }

    fn eval_node(
        &self,
        graph: &Graph,
        nid: NodeId,
        env: &HashMap<TensorId, TensorData>,
    ) -> Result<TensorData, InterpError> {
        let node = graph.node(nid);
        let ins: Vec<&TensorData> = node.inputs.iter().map(|t| &env[t]).collect();
        let out_def = graph.tensor(node.output);
        let out_shape = out_def.shape.clone();
        let out_dtype = out_def.dtype;
        match &node.op {
            OpKind::Gemm { transpose_b } | OpKind::SparseGemm { transpose_b, .. } => {
                Ok(gemm(ins[0], ins[1], *transpose_b, out_shape, out_dtype))
            }
            OpKind::Unary(u) => Ok(unary(*u, ins[0], out_dtype)),
            OpKind::Binary(k) => Ok(binary(*k, ins[0], ins[1], out_dtype)),
            OpKind::Transpose { perm } => Ok(transpose(ins[0], perm)),
            OpKind::Reshape { dims } => {
                let mut d = ins[0].clone();
                d.shape = Shape::new(dims.clone());
                Ok(d)
            }
            OpKind::Softmax => Ok(rowwise(ins[0], |row| {
                let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
                let sum: f32 = exps.iter().sum();
                for e in &mut exps {
                    *e /= sum;
                }
                exps
            })),
            OpKind::RmsNorm => Ok(rowwise(ins[0], |row| {
                let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / row.len() as f32;
                let inv = 1.0 / (ms + 1e-6).sqrt();
                row.iter().map(|&v| v * inv).collect()
            })),
            OpKind::LayerNorm => Ok(rowwise(ins[0], |row| {
                let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
                let var: f32 =
                    row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / row.len() as f32;
                let inv = 1.0 / (var + 1e-6).sqrt();
                row.iter().map(|&v| (v - mean) * inv).collect()
            })),
            OpKind::Rope => Ok(rope(ins[0])),
            OpKind::Reduce(k) => Ok(reduce(*k, ins[0], out_shape)),
            OpKind::Embedding => Ok(embedding(ins[0], ins[1], out_shape)),
            OpKind::Slice { axis, parts, index } => {
                Ok(slice(ins[0], *axis, *parts, *index, out_shape))
            }
            OpKind::Concat { axis } => Ok(concat(&ins, *axis, out_shape)),
            OpKind::KvAppend => Ok(kv_append(ins[0], ins[1])),
            // Single-socket semantics: the reduced value equals this
            // shard's contribution (peers hold identical synthetic data).
            OpKind::AllReduce { .. } => Ok(ins[0].clone()),
        }
    }
}

fn gemm(
    a: &TensorData,
    b: &TensorData,
    transpose_b: bool,
    out_shape: Shape,
    dtype: DType,
) -> TensorData {
    let complex = a.is_complex() || b.is_complex();
    let k = a.shape.inner();
    let (m, n) = {
        let dims = out_shape.dims();
        (
            out_shape.elements() as usize / dims[dims.len() - 1],
            dims[dims.len() - 1],
        )
    };
    let batched_b = b.shape.rank() == 3;
    let groups = if batched_b { b.shape.dims()[0] } else { 1 };
    let rows_per_group = m / groups;
    let (bk, bn) = if transpose_b {
        let d = b.shape.dims();
        (d[d.len() - 1], d[d.len() - 2])
    } else {
        let d = b.shape.dims();
        (d[d.len() - 2], d[d.len() - 1])
    };
    assert_eq!(bk, k, "contraction mismatch in interp gemm");
    assert_eq!(bn, n);
    let lanes = if complex { 2 } else { 1 };
    let mut out = TensorData::zeros(out_shape, dtype);
    let b_elems_per_group = bk * bn * lanes;
    let get = |t: &TensorData, idx: usize, lane: usize| -> f32 {
        if t.is_complex() {
            t.values[idx * 2 + lane]
        } else if lane == 0 {
            t.values[idx]
        } else {
            0.0
        }
    };
    for row in 0..m {
        let g = if batched_b { row / rows_per_group } else { 0 };
        for col in 0..n {
            let (mut re, mut im) = (0.0f32, 0.0f32);
            for kk in 0..k {
                let ai = row * k + kk;
                let bi_local = if transpose_b {
                    col * k + kk
                } else {
                    kk * n + col
                };
                let bi = g * (b_elems_per_group / lanes) + bi_local;
                let (ar, ai_) = (get(a, ai, 0), get(a, ai, 1));
                let (br, bi_) = (get(b, bi, 0), get(b, bi, 1));
                re += ar * br - ai_ * bi_;
                im += ar * bi_ + ai_ * br;
            }
            let oi = row * n + col;
            if lanes == 2 {
                out.values[oi * 2] = re;
                out.values[oi * 2 + 1] = im;
            } else {
                out.values[oi] = re;
            }
        }
    }
    out
}

fn unary(u: UnaryKind, x: &TensorData, out_dtype: DType) -> TensorData {
    // Cast handles real<->complex; other unaries apply lane-wise.
    if u == UnaryKind::Cast {
        let mut out = TensorData::zeros(x.shape.clone(), out_dtype);
        let out_complex = out.is_complex();
        for i in 0..x.shape.elements() as usize {
            let re = if x.is_complex() {
                x.values[i * 2]
            } else {
                x.values[i]
            };
            if out_complex {
                out.values[i * 2] = re;
                out.values[i * 2 + 1] = if x.is_complex() {
                    x.values[i * 2 + 1]
                } else {
                    0.0
                };
            } else {
                out.values[i] = re;
            }
        }
        return out;
    }
    let f = |v: f32| -> f32 {
        match u {
            UnaryKind::Silu => v / (1.0 + (-v).exp()),
            UnaryKind::Gelu => {
                0.5 * v * (1.0 + (v * 0.797_884_6 * (1.0 + 0.044715 * v * v)).tanh())
            }
            UnaryKind::Exp => v.exp(),
            UnaryKind::Rsqrt => 1.0 / v.abs().max(1e-12).sqrt(),
            UnaryKind::Scale => v * 0.125,
            UnaryKind::Neg => -v,
            UnaryKind::Cast => unreachable!("handled above"),
        }
    };
    let mut out = x.clone();
    out.dtype = out_dtype;
    for v in &mut out.values {
        *v = f(*v);
    }
    out
}

fn binary(k: BinaryKind, a: &TensorData, b: &TensorData, out_dtype: DType) -> TensorData {
    let mut out = a.clone();
    out.dtype = out_dtype;
    let complex = a.is_complex();
    let n = a.shape.elements() as usize;
    let b_elems = b.shape.elements() as usize;
    for i in 0..n {
        let bi = if b_elems == n { i } else { i % b_elems };
        if complex && k == BinaryKind::Mul && b.is_complex() {
            let (ar, ai) = (a.values[i * 2], a.values[i * 2 + 1]);
            let (br, bim) = (b.values[bi * 2], b.values[bi * 2 + 1]);
            out.values[i * 2] = ar * br - ai * bim;
            out.values[i * 2 + 1] = ar * bim + ai * br;
        } else {
            let lanes = if complex { 2 } else { 1 };
            for l in 0..lanes {
                let av = a.values[i * lanes + l];
                let bv = if b.is_complex() == complex {
                    b.values[bi * lanes + l]
                } else if l == 0 {
                    b.values[bi]
                } else {
                    0.0
                };
                out.values[i * lanes + l] = match k {
                    BinaryKind::Add => av + bv,
                    BinaryKind::Sub => av - bv,
                    BinaryKind::Mul => av * bv,
                    BinaryKind::Div => av / bv,
                    BinaryKind::Max => av.max(bv),
                };
            }
        }
    }
    out
}

fn transpose(x: &TensorData, perm: &[usize]) -> TensorData {
    let in_dims = x.shape.dims().to_vec();
    let out_shape = x.shape.permute(perm);
    let lanes = TensorData::lanes(x.dtype);
    let mut out = TensorData::zeros(out_shape.clone(), x.dtype);
    let rank = in_dims.len();
    let in_strides = strides(&in_dims);
    let out_dims = out_shape.dims().to_vec();
    let out_strides = strides(&out_dims);
    let total = x.shape.elements() as usize;
    let mut idx = vec![0usize; rank];
    for flat_out in 0..total {
        // Decompose output index, map through perm to input index.
        let mut rem = flat_out;
        for d in 0..rank {
            idx[d] = rem / out_strides[d];
            rem %= out_strides[d];
        }
        let mut flat_in = 0;
        for d in 0..rank {
            flat_in += idx[d] * in_strides[perm[d]];
        }
        for l in 0..lanes {
            out.values[flat_out * lanes + l] = x.values[flat_in * lanes + l];
        }
    }
    out
}

fn strides(dims: &[usize]) -> Vec<usize> {
    let mut s = vec![1; dims.len()];
    for d in (0..dims.len().saturating_sub(1)).rev() {
        s[d] = s[d + 1] * dims[d + 1];
    }
    s
}

fn rowwise(x: &TensorData, f: impl Fn(&[f32]) -> Vec<f32>) -> TensorData {
    let inner = x.shape.inner();
    let mut out = x.clone();
    for row in out.values.chunks_mut(inner) {
        let new = f(row);
        row.copy_from_slice(&new);
    }
    out
}

fn rope(x: &TensorData) -> TensorData {
    // Rotate consecutive pairs by a position/index dependent angle.
    let inner = x.shape.inner();
    let mut out = x.clone();
    for (r, row) in out.values.chunks_mut(inner).enumerate() {
        for p in 0..inner / 2 {
            let theta = r as f32 / 10000f32.powf(2.0 * p as f32 / inner as f32);
            let (s, c) = theta.sin_cos();
            let (a, b) = (row[2 * p], row[2 * p + 1]);
            row[2 * p] = a * c - b * s;
            row[2 * p + 1] = a * s + b * c;
        }
    }
    out
}

fn reduce(k: ReduceKind, x: &TensorData, out_shape: Shape) -> TensorData {
    let inner = x.shape.inner();
    let mut out = TensorData::zeros(out_shape, x.dtype);
    for (i, row) in x.values.chunks(inner).enumerate() {
        out.values[i] = match k {
            ReduceKind::Sum => row.iter().sum(),
            ReduceKind::Max => row.iter().copied().fold(f32::NEG_INFINITY, f32::max),
            ReduceKind::Mean => row.iter().sum::<f32>() / inner as f32,
        };
    }
    out
}

fn embedding(table: &TensorData, ids: &TensorData, out_shape: Shape) -> TensorData {
    let d = table.shape.inner();
    let vocab = table.shape.outer();
    let mut out = TensorData::zeros(out_shape, table.dtype);
    for (i, &id) in ids.values.iter().enumerate() {
        let row = (id.abs() as usize) % vocab;
        out.values[i * d..(i + 1) * d].copy_from_slice(&table.values[row * d..(row + 1) * d]);
    }
    out
}

fn slice(x: &TensorData, axis: usize, parts: usize, index: usize, out_shape: Shape) -> TensorData {
    let dims = x.shape.dims();
    let lanes = TensorData::lanes(x.dtype);
    let outer: usize = dims[..axis].iter().product();
    let axis_len = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product::<usize>() * lanes;
    let span = axis_len / parts;
    let mut out = TensorData::zeros(out_shape, x.dtype);
    let mut w = 0;
    for o in 0..outer {
        let base = (o * axis_len + index * span) * inner;
        out.values[w..w + span * inner].copy_from_slice(&x.values[base..base + span * inner]);
        w += span * inner;
    }
    out
}

fn concat(ins: &[&TensorData], axis: usize, out_shape: Shape) -> TensorData {
    let lanes = TensorData::lanes(ins[0].dtype);
    let dims0 = ins[0].shape.dims();
    let outer: usize = dims0[..axis].iter().product();
    let inner: usize = dims0[axis + 1..].iter().product::<usize>() * lanes;
    let mut out = TensorData::zeros(out_shape, ins[0].dtype);
    let mut w = 0;
    for o in 0..outer {
        for t in ins {
            let alen = t.shape.dims()[axis];
            let base = o * alen * inner;
            out.values[w..w + alen * inner].copy_from_slice(&t.values[base..base + alen * inner]);
            w += alen * inner;
        }
    }
    out
}

fn kv_append(cache: &TensorData, rows: &TensorData) -> TensorData {
    // Write the new rows over the tail of each cache group.
    let mut out = cache.clone();
    let lanes = TensorData::lanes(cache.dtype);
    let cd = cache.shape.dims();
    let rd = rows.shape.dims();
    let (groups, cap, d) = (cd[0], cd[1], cd[2] * lanes);
    let new = rd[1];
    for g in 0..groups {
        let dst = (g * cap + (cap - new)) * d;
        let src = g * new * d;
        out.values[dst..dst + new * d].copy_from_slice(&rows.values[src..src + new * d]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::tensor::TensorKind;
    use proptest::prelude::*;

    fn td(rows: usize, cols: usize, values: Vec<f32>) -> TensorData {
        TensorData::new(Shape::mat(rows, cols), values)
    }

    #[test]
    fn gemm_matches_reference() {
        let mut b = GraphBuilder::new("g");
        let x = b.tensor("x", Shape::mat(2, 3), DType::Fp32, TensorKind::Input);
        let w = b.tensor("w", Shape::mat(3, 2), DType::Fp32, TensorKind::Weight);
        let y = b
            .node("mm", OpKind::Gemm { transpose_b: false }, &[x, w])
            .unwrap();
        b.mark_output(y);
        let g = b.build().unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(x, td(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        inputs.insert(w, td(3, 2, vec![7., 8., 9., 10., 11., 12.]));
        let out = Interpreter::new(0).run_outputs(&g, &inputs).unwrap();
        assert_eq!(out[0].values, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn gemm_transpose_b_matches() {
        let mut b = GraphBuilder::new("g");
        let x = b.tensor("x", Shape::mat(2, 3), DType::Fp32, TensorKind::Input);
        let w = b.tensor("w", Shape::mat(2, 3), DType::Fp32, TensorKind::Weight);
        let y = b
            .node("mm", OpKind::Gemm { transpose_b: true }, &[x, w])
            .unwrap();
        b.mark_output(y);
        let g = b.build().unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(x, td(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        inputs.insert(w, td(2, 3, vec![1., 0., 0., 0., 1., 0.]));
        let out = Interpreter::new(0).run_outputs(&g, &inputs).unwrap();
        // Rows of x dotted with rows of w.
        assert_eq!(out[0].values, vec![1., 2., 4., 5.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut b = GraphBuilder::new("s");
        let x = b.tensor("x", Shape::mat(4, 8), DType::Fp32, TensorKind::Input);
        let y = b.node("sm", OpKind::Softmax, &[x]).unwrap();
        b.mark_output(y);
        let g = b.build().unwrap();
        let out = Interpreter::new(3)
            .run_outputs(&g, &HashMap::new())
            .unwrap();
        for row in out[0].values.chunks(8) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row sums to {sum}");
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn transpose_moves_elements() {
        let mut b = GraphBuilder::new("t");
        let x = b.tensor("x", Shape::mat(2, 3), DType::Fp32, TensorKind::Input);
        let y = b
            .node("tr", OpKind::Transpose { perm: vec![1, 0] }, &[x])
            .unwrap();
        b.mark_output(y);
        let g = b.build().unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(x, td(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let out = Interpreter::new(0).run_outputs(&g, &inputs).unwrap();
        assert_eq!(out[0].values, vec![1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn double_transpose_is_identity() {
        let mut b = GraphBuilder::new("t2");
        let x = b.tensor(
            "x",
            Shape::new(vec![2, 3, 4]),
            DType::Fp32,
            TensorKind::Input,
        );
        let t1 = b
            .node(
                "a",
                OpKind::Transpose {
                    perm: vec![0, 2, 1],
                },
                &[x],
            )
            .unwrap();
        let t2 = b
            .node(
                "b",
                OpKind::Transpose {
                    perm: vec![0, 2, 1],
                },
                &[t1],
            )
            .unwrap();
        b.mark_output(t2);
        let g = b.build().unwrap();
        let env = Interpreter::new(5).run(&g, &HashMap::new()).unwrap();
        assert_eq!(env[&x].values, env[&t2].values);
    }

    #[test]
    fn complex_gemm_multiplies_complex() {
        // (1 + i) * (1 + i) = 2i via a 1x1x1 complex gemm.
        let mut b = GraphBuilder::new("c");
        let x = b.tensor("x", Shape::mat(1, 1), DType::ComplexBf16, TensorKind::Input);
        let w = b.tensor(
            "w",
            Shape::mat(1, 1),
            DType::ComplexBf16,
            TensorKind::Weight,
        );
        let y = b
            .node("mm", OpKind::Gemm { transpose_b: false }, &[x, w])
            .unwrap();
        b.mark_output(y);
        let g = b.build().unwrap();
        let mut inputs = HashMap::new();
        let one_plus_i = TensorData {
            shape: Shape::mat(1, 1),
            dtype: DType::ComplexBf16,
            values: vec![1.0, 1.0],
        };
        inputs.insert(x, one_plus_i.clone());
        inputs.insert(w, one_plus_i);
        let out = Interpreter::new(0).run_outputs(&g, &inputs).unwrap();
        assert!((out[0].values[0] - 0.0).abs() < 1e-6);
        assert!((out[0].values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn slice_concat_roundtrip() {
        let mut b = GraphBuilder::new("sc");
        let x = b.tensor("x", Shape::mat(4, 6), DType::Fp32, TensorKind::Input);
        let a = b
            .node(
                "s0",
                OpKind::Slice {
                    axis: 1,
                    parts: 2,
                    index: 0,
                },
                &[x],
            )
            .unwrap();
        let c = b
            .node(
                "s1",
                OpKind::Slice {
                    axis: 1,
                    parts: 2,
                    index: 1,
                },
                &[x],
            )
            .unwrap();
        let y = b.node("cat", OpKind::Concat { axis: 1 }, &[a, c]).unwrap();
        b.mark_output(y);
        let g = b.build().unwrap();
        let env = Interpreter::new(11).run(&g, &HashMap::new()).unwrap();
        assert_eq!(env[&x].values, env[&y].values);
    }

    #[test]
    fn monarch_graph_executes_finitely() {
        let g = crate::monarch::monarch_fft(2, 8);
        let out = Interpreter::new(1)
            .run_outputs(&g, &HashMap::new())
            .unwrap();
        assert!(out[0].values.iter().all(|v| v.is_finite()));
        assert!(out[0].values.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn kv_append_places_new_rows_at_tail() {
        let mut b = GraphBuilder::new("kv");
        let cache = b.tensor(
            "c",
            Shape::new(vec![1, 4, 2]),
            DType::Fp32,
            TensorKind::KvCache,
        );
        let new = b.tensor(
            "n",
            Shape::new(vec![1, 1, 2]),
            DType::Fp32,
            TensorKind::Input,
        );
        let y = b.node("app", OpKind::KvAppend, &[cache, new]).unwrap();
        b.mark_output(y);
        let g = b.build().unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(
            cache,
            TensorData::new(Shape::new(vec![1, 4, 2]), vec![0.0; 8]),
        );
        inputs.insert(
            new,
            TensorData::new(Shape::new(vec![1, 1, 2]), vec![7.0, 8.0]),
        );
        let out = Interpreter::new(0).run_outputs(&g, &inputs).unwrap();
        assert_eq!(&out[0].values[6..8], &[7.0, 8.0]);
        assert_eq!(&out[0].values[..6], &[0.0; 6]);
    }

    #[test]
    fn embedding_gathers_rows() {
        let mut b = GraphBuilder::new("e");
        let table = b.tensor("t", Shape::mat(4, 2), DType::Fp32, TensorKind::Weight);
        let ids = b.tensor("i", Shape::new(vec![3]), DType::Int32, TensorKind::Input);
        let y = b.node("emb", OpKind::Embedding, &[table, ids]).unwrap();
        b.mark_output(y);
        let g = b.build().unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(table, td(4, 2, vec![0., 1., 10., 11., 20., 21., 30., 31.]));
        inputs.insert(
            ids,
            TensorData::new(Shape::new(vec![3]), vec![2.0, 0.0, 3.0]),
        );
        let out = Interpreter::new(0).run_outputs(&g, &inputs).unwrap();
        assert_eq!(out[0].values, vec![20., 21., 0., 1., 30., 31.]);
    }

    #[test]
    fn unsupplied_sources_are_deterministic() {
        let g = crate::monarch::monarch_fft(2, 8);
        let a = Interpreter::new(9)
            .run_outputs(&g, &HashMap::new())
            .unwrap();
        let b = Interpreter::new(9)
            .run_outputs(&g, &HashMap::new())
            .unwrap();
        let c = Interpreter::new(10)
            .run_outputs(&g, &HashMap::new())
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// GEMM distributes over addition: (A + B) W == AW + BW.
        #[test]
        fn gemm_is_linear(vals_a in proptest::collection::vec(-2.0f32..2.0, 6),
                          vals_b in proptest::collection::vec(-2.0f32..2.0, 6)) {
            let build_graph = || {
                let mut b = GraphBuilder::new("lin");
                let x = b.tensor("x", Shape::mat(2, 3), DType::Fp32, TensorKind::Input);
                let w = b.tensor("w", Shape::mat(3, 2), DType::Fp32, TensorKind::Weight);
                let y = b.node("mm", OpKind::Gemm { transpose_b: false }, &[x, w]).unwrap();
                b.mark_output(y);
                (b.build().unwrap(), x, w)
            };
            let (g, x, w) = build_graph();
            let wvals: Vec<f32> = (0..6).map(|i| (i as f32) * 0.5 - 1.0).collect();
            let run = |xv: Vec<f32>| {
                let mut inp = HashMap::new();
                inp.insert(x, td(2, 3, xv));
                inp.insert(w, td(3, 2, wvals.clone()));
                Interpreter::new(0).run_outputs(&g, &inp).unwrap()[0].values.clone()
            };
            let sum_in: Vec<f32> = vals_a.iter().zip(&vals_b).map(|(a, b)| a + b).collect();
            let lhs = run(sum_in);
            let ra = run(vals_a.clone());
            let rb = run(vals_b.clone());
            for i in 0..lhs.len() {
                prop_assert!((lhs[i] - (ra[i] + rb[i])).abs() < 1e-3);
            }
        }

        /// Softmax output is a probability distribution for any input row.
        #[test]
        fn softmax_is_distribution(vals in proptest::collection::vec(-30.0f32..30.0, 8)) {
            let mut b = GraphBuilder::new("sm");
            let x = b.tensor("x", Shape::mat(1, 8), DType::Fp32, TensorKind::Input);
            let y = b.node("s", OpKind::Softmax, &[x]).unwrap();
            b.mark_output(y);
            let g = b.build().unwrap();
            let mut inp = HashMap::new();
            inp.insert(x, td(1, 8, vals));
            let out = Interpreter::new(0).run_outputs(&g, &inp).unwrap();
            let sum: f32 = out[0].values.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(out[0].values.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        /// RoPE preserves the norm of every rotated pair (it is a rotation).
        #[test]
        fn rope_preserves_norms(vals in proptest::collection::vec(-3.0f32..3.0, 16)) {
            let mut b = GraphBuilder::new("r");
            let x = b.tensor("x", Shape::mat(2, 8), DType::Fp32, TensorKind::Input);
            let y = b.node("rope", OpKind::Rope, &[x]).unwrap();
            b.mark_output(y);
            let g = b.build().unwrap();
            let mut inp = HashMap::new();
            inp.insert(x, td(2, 8, vals.clone()));
            let out = Interpreter::new(0).run_outputs(&g, &inp).unwrap();
            for (before, after) in vals.chunks(2).zip(out[0].values.chunks(2)) {
                let nb = before[0].hypot(before[1]);
                let na = after[0].hypot(after[1]);
                prop_assert!((nb - na).abs() < 1e-3, "norm {nb} -> {na}");
            }
        }
    }
}
