//! Graph statistics: operator histograms, access-pattern mix, and byte
//! breakdowns by tensor kind — the quick profile a compiler engineer
//! prints before deciding how a workload will map.

use crate::graph::Graph;
use crate::op::AccessPattern;
use crate::tensor::TensorKind;
use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, Flops};
use std::collections::BTreeMap;
use std::fmt;

/// A profile of one graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    pub name: String,
    pub nodes: usize,
    pub tensors: usize,
    /// Node count per operator mnemonic.
    pub op_histogram: BTreeMap<String, usize>,
    /// Node count per access pattern.
    pub pattern_mix: BTreeMap<String, usize>,
    /// Bytes per tensor kind.
    pub bytes_by_kind: BTreeMap<String, Bytes>,
    pub total_flops: Flops,
    /// FLOPs carried by contractions (GEMM share).
    pub gemm_flops: Flops,
}

/// Computes the profile.
pub fn graph_stats(graph: &Graph) -> GraphStats {
    let mut op_histogram = BTreeMap::new();
    let mut pattern_mix = BTreeMap::new();
    let mut gemm_flops = Flops::ZERO;
    for nid in graph.node_ids() {
        let node = graph.node(nid);
        *op_histogram
            .entry(node.op.mnemonic().to_string())
            .or_insert(0) += 1;
        let pat = match node.op.access_pattern() {
            AccessPattern::Streaming => "streaming",
            AccessPattern::Contraction => "contraction",
            AccessPattern::RowLocal => "row-local",
            AccessPattern::Reorder => "reorder",
            AccessPattern::Collective => "collective",
        };
        *pattern_mix.entry(pat.to_string()).or_insert(0) += 1;
        if node.op.is_gemm() {
            gemm_flops += graph.node_flops(nid);
        }
    }
    let mut bytes_by_kind = BTreeMap::new();
    for t in graph.tensors() {
        let kind = match t.kind {
            TensorKind::Weight => "weight",
            TensorKind::Input => "input",
            TensorKind::Output => "output",
            TensorKind::Activation => "activation",
            TensorKind::KvCache => "kv-cache",
            TensorKind::Metadata => "metadata",
            TensorKind::Generated => "generated",
        };
        let entry = bytes_by_kind.entry(kind.to_string()).or_insert(Bytes::ZERO);
        *entry += t.bytes();
    }
    GraphStats {
        name: graph.name().to_string(),
        nodes: graph.node_count(),
        tensors: graph.tensors().len(),
        op_histogram,
        pattern_mix,
        bytes_by_kind,
        total_flops: graph.total_flops(),
        gemm_flops,
    }
}

impl GraphStats {
    /// Fraction of FLOPs in contractions — near 1.0 for transformer
    /// workloads, which is why systolic arrays earn their area.
    pub fn gemm_fraction(&self) -> f64 {
        if self.total_flops.as_f64() == 0.0 {
            0.0
        } else {
            self.gemm_flops / self.total_flops
        }
    }

    /// Fraction of operators whose access pattern breaks conventional GPU
    /// fusion (reorders) — the §III-A obstruction, as a single number.
    pub fn reorder_fraction(&self) -> f64 {
        let reorders = self.pattern_mix.get("reorder").copied().unwrap_or(0);
        reorders as f64 / self.nodes as f64
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} ops, {} tensors, {}",
            self.name, self.nodes, self.tensors, self.total_flops
        )?;
        write!(f, "  ops:")?;
        for (op, n) in &self.op_histogram {
            write!(f, " {op}x{n}")?;
        }
        writeln!(f)?;
        write!(f, "  patterns:")?;
        for (p, n) in &self.pattern_mix {
            write!(f, " {p}={n}")?;
        }
        writeln!(f)?;
        for (k, b) in &self.bytes_by_kind {
            writeln!(f, "  {k}: {b}")?;
        }
        writeln!(f, "  gemm share: {:.1}%", 100.0 * self.gemm_fraction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monarch::monarch_fig3;

    #[test]
    fn fig3_stats_match_structure() {
        let s = graph_stats(&monarch_fig3());
        assert_eq!(s.nodes, 6);
        assert_eq!(s.op_histogram["gemm"], 2);
        assert_eq!(s.op_histogram["cast"], 2);
        assert_eq!(s.pattern_mix["contraction"], 2);
        assert_eq!(s.pattern_mix["reorder"], 1);
        assert!(s.gemm_fraction() > 0.95, "FFT factor multiplies dominate");
    }

    #[test]
    fn display_mentions_everything() {
        let s = graph_stats(&monarch_fig3());
        let text = s.to_string();
        assert!(text.contains("gemm share"));
        assert!(text.contains("weight:"));
        assert!(text.contains("contraction"));
    }

    #[test]
    fn reorder_fraction_counts_transposes() {
        let s = graph_stats(&monarch_fig3());
        assert!((s.reorder_fraction() - 1.0 / 6.0).abs() < 1e-9);
    }
}
