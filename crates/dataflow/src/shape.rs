//! Tensor shapes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a tensor, outermost first.
///
/// ```
/// use sn_dataflow::Shape;
/// let s = Shape::new(vec![8, 4096, 128]);
/// assert_eq!(s.elements(), 8 * 4096 * 128);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from explicit dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero — zero-sized tensors are always a
    /// model-construction bug in this workspace.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero dimension in shape {dims:?}"
        );
        Shape(dims)
    }

    /// A scalar-like one-element shape.
    pub fn scalar() -> Self {
        Shape(vec![1])
    }

    /// A 2-D shape.
    pub fn mat(rows: usize, cols: usize) -> Self {
        Shape::new(vec![rows, cols])
    }

    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count.
    pub fn elements(&self) -> u64 {
        self.0.iter().map(|&d| d as u64).product()
    }

    /// The innermost (fastest-varying) dimension.
    pub fn inner(&self) -> usize {
        *self.0.last().expect("shape is non-empty")
    }

    /// The outermost dimension.
    pub fn outer(&self) -> usize {
        self.0[0]
    }

    /// Returns a new shape with dimensions permuted by `perm`
    /// (`perm[i]` is the source axis of destination axis `i`).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Shape {
        assert_eq!(perm.len(), self.rank(), "permutation rank mismatch");
        let mut seen = vec![false; self.rank()];
        for &p in perm {
            assert!(p < self.rank() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        Shape(perm.iter().map(|&p| self.0[p]).collect())
    }

    /// Collapses to a 2-D view `[product(outer dims), inner]`, the canonical
    /// GEMM-operand view.
    pub fn as_2d(&self) -> (u64, u64) {
        let inner = self.inner() as u64;
        (self.elements() / inner, inner)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_multiply() {
        assert_eq!(Shape::new(vec![2, 3, 4]).elements(), 24);
        assert_eq!(Shape::scalar().elements(), 1);
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dim_rejected() {
        let _ = Shape::new(vec![4, 0]);
    }

    #[test]
    fn permute_reorders() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.permute(&[2, 0, 1]), Shape::new(vec![4, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "invalid permutation")]
    fn bad_permutation_rejected() {
        let _ = Shape::new(vec![2, 3]).permute(&[0, 0]);
    }

    #[test]
    fn as_2d_collapses_outer() {
        assert_eq!(Shape::new(vec![8, 16, 32]).as_2d(), (128, 32));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Shape::new(vec![8, 4096]).to_string(), "[8x4096]");
    }
}
