//! Graphviz DOT export for dataflow graphs.
//!
//! Useful when inspecting what the model builders emit and how the fusion
//! pass partitions it: `dot -Tsvg graph.dot -o graph.svg`.

use crate::graph::{Graph, NodeId};
use crate::op::AccessPattern;
use std::fmt::Write as _;

/// Renders the graph as DOT. When `partition` is given, kernels become
/// clusters.
pub fn to_dot(graph: &Graph, partition: Option<&[Vec<NodeId>]>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", graph.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    let color = |n: NodeId| match graph.node(n).op.access_pattern() {
        AccessPattern::Contraction => "lightsteelblue",
        AccessPattern::Streaming => "palegreen",
        AccessPattern::RowLocal => "khaki",
        AccessPattern::Reorder => "lightsalmon",
        AccessPattern::Collective => "plum",
    };
    let emit_node = |out: &mut String, n: NodeId, indent: &str| {
        let node = graph.node(n);
        let _ = writeln!(
            out,
            "{indent}{} [label=\"{}\\n{}\", style=filled, fillcolor={}];",
            n,
            node.name,
            graph.tensor(node.output).shape,
            color(n)
        );
    };
    match partition {
        Some(kernels) => {
            for (ki, kernel) in kernels.iter().enumerate() {
                let _ = writeln!(out, "  subgraph cluster_{ki} {{");
                let _ = writeln!(out, "    label=\"kernel {ki}\";");
                for &n in kernel {
                    emit_node(&mut out, n, "    ");
                }
                let _ = writeln!(out, "  }}");
            }
        }
        None => {
            for n in graph.node_ids() {
                emit_node(&mut out, n, "  ");
            }
        }
    }
    for n in graph.node_ids() {
        for &t in &graph.node(n).inputs {
            if let Some(p) = graph.producer(t) {
                let _ = writeln!(out, "  {p} -> {n};");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::contraction_anchored_partition;
    use crate::monarch::monarch_fig3;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = monarch_fig3();
        let dot = to_dot(&g, None);
        assert!(dot.starts_with("digraph"));
        for n in g.node_ids() {
            assert!(dot.contains(&format!("{n} [label=")), "missing {n}");
        }
        // Five producer->consumer edges in the 6-op chain.
        assert_eq!(dot.matches(" -> ").count(), 5);
    }

    #[test]
    fn partitioned_dot_has_clusters() {
        let g = monarch_fig3();
        let p = contraction_anchored_partition(&g);
        let dot = to_dot(&g, Some(&p));
        assert_eq!(dot.matches("subgraph cluster_").count(), p.len());
    }

    #[test]
    fn dot_is_parseable_shape() {
        let g = monarch_fig3();
        let dot = to_dot(&g, None);
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
