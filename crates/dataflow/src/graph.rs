//! Dataflow graph construction and queries.
//!
//! Graphs are built through [`GraphBuilder`], which infers output shapes as
//! nodes are added and guarantees acyclicity by construction (a node can
//! only consume tensors that already exist). Insertion order is therefore a
//! valid topological order, which the compiler relies on.

use crate::dtype::DType;
use crate::op::{Node, OpKind};
use crate::shape::Shape;
use crate::tensor::{TensorDef, TensorId, TensorKind};
use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, Flops};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifier of a node within one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors from graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An operator rejected its input shapes.
    Shape(String),
    /// A node referenced a tensor id from a different graph.
    UnknownTensor(String),
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Shape(m) => write!(f, "shape error: {m}"),
            GraphError::UnknownTensor(m) => write!(f, "unknown tensor: {m}"),
            GraphError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl Error for GraphError {}

/// An immutable dataflow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    tensors: Vec<TensorDef>,
    nodes: Vec<Node>,
    /// producer node of each tensor (index-aligned with `tensors`).
    producers: Vec<Option<NodeId>>,
    /// consumer nodes of each tensor.
    consumers: Vec<Vec<NodeId>>,
}

impl Graph {
    /// The graph's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node ids in topological order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn tensor(&self, id: TensorId) -> &TensorDef {
        &self.tensors[id.index()]
    }

    pub fn tensors(&self) -> &[TensorDef] {
        &self.tensors
    }

    pub fn tensor_ids(&self) -> impl Iterator<Item = TensorId> + '_ {
        (0..self.tensors.len() as u32).map(TensorId)
    }

    /// The node that produces a tensor, if any (graph inputs have none).
    pub fn producer(&self, id: TensorId) -> Option<NodeId> {
        self.producers[id.index()]
    }

    /// The nodes that consume a tensor.
    pub fn consumers(&self, id: TensorId) -> &[NodeId] {
        &self.consumers[id.index()]
    }

    /// FLOPs performed by one node.
    pub fn node_flops(&self, id: NodeId) -> Flops {
        let node = self.node(id);
        let inputs: Vec<&Shape> = node.inputs.iter().map(|&t| &self.tensor(t).shape).collect();
        let out = self.tensor(node.output);
        node.op.flops(&inputs, &out.shape, out.dtype)
    }

    /// Total FLOPs of the whole graph.
    pub fn total_flops(&self) -> Flops {
        self.node_ids().map(|n| self.node_flops(n)).sum()
    }

    /// Bytes read by a node from off-chip-eligible tensors (excludes
    /// [`TensorKind::Generated`] inputs, which never leave the chip).
    pub fn node_input_bytes(&self, id: NodeId) -> Bytes {
        self.node(id)
            .inputs
            .iter()
            .map(|&t| self.tensor(t))
            .filter(|t| t.is_offchip())
            .map(|t| t.bytes())
            .sum()
    }

    /// Bytes written by a node.
    pub fn node_output_bytes(&self, id: NodeId) -> Bytes {
        self.tensor(self.node(id).output).bytes()
    }

    /// Total bytes of all [`TensorKind::Weight`] tensors — the model's
    /// parameter footprint.
    pub fn weight_bytes(&self) -> Bytes {
        self.tensors
            .iter()
            .filter(|t| t.kind == TensorKind::Weight)
            .map(|t| t.bytes())
            .sum()
    }

    /// Total bytes of all [`TensorKind::KvCache`] tensors.
    pub fn kv_cache_bytes(&self) -> Bytes {
        self.tensors
            .iter()
            .filter(|t| t.kind == TensorKind::KvCache)
            .map(|t| t.bytes())
            .sum()
    }

    /// Tensors that cross the graph boundary as inputs: graph [`TensorKind::Input`],
    /// weights, metadata, and KV caches read by some node but produced by none.
    pub fn external_inputs(&self) -> Vec<TensorId> {
        self.tensor_ids()
            .filter(|&t| self.producer(t).is_none() && !self.consumers(t).is_empty())
            .collect()
    }

    /// Tensors marked as graph outputs.
    pub fn outputs(&self) -> Vec<TensorId> {
        self.tensor_ids()
            .filter(|&t| self.tensor(t).kind == TensorKind::Output)
            .collect()
    }

    /// Looks a tensor up by name (names are not required to be unique; the
    /// first match wins).
    pub fn tensor_by_name(&self, name: &str) -> Option<TensorId> {
        self.tensor_ids().find(|&t| self.tensor(t).name == name)
    }

    /// Sum of FLOPs for the given subset of nodes.
    pub fn subset_flops(&self, nodes: &[NodeId]) -> Flops {
        nodes.iter().map(|&n| self.node_flops(n)).sum()
    }

    /// Off-chip boundary traffic of a node subset treated as one fused
    /// kernel: tensors read from outside the subset plus tensors written
    /// for consumption outside the subset (or graph outputs). Intermediates
    /// wholly inside the subset stay in on-chip stage buffers and count
    /// zero (§III-A).
    pub fn subset_boundary_bytes(&self, nodes: &[NodeId]) -> Bytes {
        let inside: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
        let mut traffic = Bytes::ZERO;
        let mut read_tensors: std::collections::HashSet<TensorId> = Default::default();
        for &nid in nodes {
            let node = self.node(nid);
            for &t in &node.inputs {
                let produced_inside = self
                    .producer(t)
                    .map(|p| inside.contains(&p))
                    .unwrap_or(false);
                if !produced_inside && self.tensor(t).is_offchip() && read_tensors.insert(t) {
                    traffic += self.tensor(t).bytes();
                }
            }
            let out = node.output;
            let escapes = self.tensor(out).kind == TensorKind::Output
                || self.consumers(out).iter().any(|c| !inside.contains(c));
            if escapes && self.tensor(out).is_offchip() {
                traffic += self.tensor(out).bytes();
            }
        }
        traffic
    }
}

/// Incremental graph builder.
///
/// ```
/// use sn_dataflow::{GraphBuilder, OpKind, Shape, DType, TensorKind};
///
/// let mut b = GraphBuilder::new("tiny");
/// let x = b.tensor("x", Shape::mat(128, 64), DType::Bf16, TensorKind::Input);
/// let w = b.tensor("w", Shape::mat(64, 256), DType::Bf16, TensorKind::Weight);
/// let y = b.node("proj", OpKind::Gemm { transpose_b: false }, &[x, w]).unwrap();
/// b.mark_output(y);
/// let g = b.build().unwrap();
/// assert_eq!(g.node_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    tensors: Vec<TensorDef>,
    nodes: Vec<Node>,
    producers: Vec<Option<NodeId>>,
    consumers: Vec<Vec<NodeId>>,
    names_seen: HashMap<String, u32>,
    region: u32,
}

impl GraphBuilder {
    /// Starts a new graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            name: name.into(),
            tensors: Vec::new(),
            nodes: Vec::new(),
            producers: Vec::new(),
            consumers: Vec::new(),
            names_seen: HashMap::new(),
            region: 0,
        }
    }

    /// Sets the scheduling region for subsequently added nodes (e.g. the
    /// transformer layer index). See [`crate::op::Node::region`].
    pub fn set_region(&mut self, region: u32) {
        self.region = region;
    }

    fn unique_name(&mut self, base: &str) -> String {
        let n = self.names_seen.entry(base.to_string()).or_insert(0);
        *n += 1;
        if *n == 1 {
            base.to_string()
        } else {
            format!("{base}#{n}")
        }
    }

    /// Declares a source tensor (input, weight, metadata, KV cache, or
    /// on-chip generated value).
    pub fn tensor(
        &mut self,
        name: impl AsRef<str>,
        shape: Shape,
        dtype: DType,
        kind: TensorKind,
    ) -> TensorId {
        let name = self.unique_name(name.as_ref());
        let id = TensorId(self.tensors.len() as u32);
        self.tensors.push(TensorDef::new(name, shape, dtype, kind));
        self.producers.push(None);
        self.consumers.push(Vec::new());
        id
    }

    /// Adds an operator node consuming existing tensors; the output tensor
    /// is created as an [`TensorKind::Activation`] with inferred shape and
    /// the dtype of the first input.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Shape`] if the operator rejects the input
    /// shapes, or [`GraphError::UnknownTensor`] on a foreign tensor id.
    pub fn node(
        &mut self,
        name: impl AsRef<str>,
        op: OpKind,
        inputs: &[TensorId],
    ) -> Result<TensorId, GraphError> {
        self.node_with_dtype(name, op, inputs, None)
    }

    /// Like [`GraphBuilder::node`] but forces the output dtype (format
    /// conversions, logits in FP32, and similar).
    pub fn node_with_dtype(
        &mut self,
        name: impl AsRef<str>,
        op: OpKind,
        inputs: &[TensorId],
        out_dtype: Option<DType>,
    ) -> Result<TensorId, GraphError> {
        for &t in inputs {
            if t.index() >= self.tensors.len() {
                return Err(GraphError::UnknownTensor(format!("{t}")));
            }
        }
        let shapes: Vec<&Shape> = inputs
            .iter()
            .map(|&t| &self.tensors[t.index()].shape)
            .collect();
        let out_shape = op.infer_shape(&shapes).map_err(GraphError::Shape)?;
        let dtype = out_dtype.unwrap_or_else(|| self.tensors[inputs[0].index()].dtype);
        let node_name = self.unique_name(name.as_ref());
        let out_kind = if matches!(op, OpKind::KvAppend) {
            TensorKind::KvCache
        } else {
            TensorKind::Activation
        };
        let out = self.tensor(format!("{node_name}.out"), out_shape, dtype, out_kind);
        let nid = NodeId(self.nodes.len() as u32);
        for &t in inputs {
            self.consumers[t.index()].push(nid);
        }
        self.producers[out.index()] = Some(nid);
        self.nodes.push(Node {
            name: node_name,
            op,
            inputs: inputs.to_vec(),
            output: out,
            region: self.region,
        });
        Ok(out)
    }

    /// Marks a produced tensor as a graph output.
    pub fn mark_output(&mut self, id: TensorId) {
        self.tensors[id.index()].kind = TensorKind::Output;
    }

    /// Shape of a tensor declared so far (useful when a builder routine
    /// needs to adapt to an inferred intermediate shape).
    ///
    /// # Panics
    ///
    /// Panics on a foreign tensor id.
    pub fn shape_of(&self, id: TensorId) -> &Shape {
        &self.tensors[id.index()].shape
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] if no node was added.
    pub fn build(self) -> Result<Graph, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        Ok(Graph {
            name: self.name,
            tensors: self.tensors,
            nodes: self.nodes,
            producers: self.producers,
            consumers: self.consumers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::BinaryKind;

    fn mlp_graph() -> Graph {
        // x -> gemm(w1) -> silu -> mul(gemm(w3)) -> gemm(w2) -> y
        let mut b = GraphBuilder::new("mlp");
        let x = b.tensor("x", Shape::mat(64, 128), DType::Bf16, TensorKind::Input);
        let w1 = b.tensor("w1", Shape::mat(128, 512), DType::Bf16, TensorKind::Weight);
        let w3 = b.tensor("w3", Shape::mat(128, 512), DType::Bf16, TensorKind::Weight);
        let w2 = b.tensor("w2", Shape::mat(512, 128), DType::Bf16, TensorKind::Weight);
        let g = b
            .node("gate", OpKind::Gemm { transpose_b: false }, &[x, w1])
            .unwrap();
        let a = b
            .node("act", OpKind::Unary(crate::op::UnaryKind::Silu), &[g])
            .unwrap();
        let u = b
            .node("up", OpKind::Gemm { transpose_b: false }, &[x, w3])
            .unwrap();
        let m = b
            .node("mix", OpKind::Binary(BinaryKind::Mul), &[a, u])
            .unwrap();
        let y = b
            .node("down", OpKind::Gemm { transpose_b: false }, &[m, w2])
            .unwrap();
        b.mark_output(y);
        b.build().unwrap()
    }

    #[test]
    fn builder_infers_shapes() {
        let g = mlp_graph();
        assert_eq!(g.node_count(), 5);
        let y = g.outputs()[0];
        assert_eq!(g.tensor(y).shape, Shape::mat(64, 128));
    }

    #[test]
    fn insertion_order_is_topological() {
        let g = mlp_graph();
        for nid in g.node_ids() {
            for &t in &g.node(nid).inputs {
                if let Some(p) = g.producer(t) {
                    assert!(p < nid, "producer {p} must precede consumer {nid}");
                }
            }
        }
    }

    #[test]
    fn consumers_and_producers_are_inverse() {
        let g = mlp_graph();
        for t in g.tensor_ids() {
            for &c in g.consumers(t) {
                assert!(g.node(c).inputs.contains(&t));
            }
            if let Some(p) = g.producer(t) {
                assert_eq!(g.node(p).output, t);
            }
        }
    }

    #[test]
    fn weight_bytes_sum_parameters() {
        let g = mlp_graph();
        // w1 + w3: 128*512 each, w2: 512*128, all BF16.
        assert_eq!(g.weight_bytes(), Bytes::new(3 * 128 * 512 * 2));
    }

    #[test]
    fn fused_boundary_excludes_intermediates() {
        let g = mlp_graph();
        let all: Vec<NodeId> = g.node_ids().collect();
        let fused = g.subset_boundary_bytes(&all);
        // Boundary: x, w1, w3, w2, y. (x counted once even though read twice.)
        let expect = Bytes::new((64 * 128 + 3 * 128 * 512 + 64 * 128) * 2);
        assert_eq!(fused, expect);
        // Unfused sums every edge and is strictly larger.
        let unfused: Bytes = g
            .node_ids()
            .map(|n| g.node_input_bytes(n) + g.node_output_bytes(n))
            .sum();
        assert!(unfused > fused);
    }

    #[test]
    fn duplicate_names_are_uniquified() {
        let mut b = GraphBuilder::new("dup");
        let x = b.tensor("x", Shape::mat(4, 4), DType::Bf16, TensorKind::Input);
        let a = b
            .node("op", OpKind::Unary(crate::op::UnaryKind::Neg), &[x])
            .unwrap();
        let _ = b
            .node("op", OpKind::Unary(crate::op::UnaryKind::Neg), &[a])
            .unwrap();
        let g = b.build().unwrap();
        assert_ne!(g.nodes()[0].name, g.nodes()[1].name);
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(
            GraphBuilder::new("e").build().unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn foreign_tensor_rejected() {
        let mut other = GraphBuilder::new("other");
        let foreign = other.tensor("x", Shape::mat(4, 4), DType::Bf16, TensorKind::Input);
        let mut b = GraphBuilder::new("b");
        let err = b.node("op", OpKind::Unary(crate::op::UnaryKind::Neg), &[foreign]);
        assert!(matches!(err, Err(GraphError::UnknownTensor(_))));
    }

    #[test]
    fn generated_inputs_do_not_count_as_traffic() {
        let mut b = GraphBuilder::new("gen");
        let x = b.tensor("x", Shape::mat(64, 64), DType::Bf16, TensorKind::Input);
        let tw = b.tensor("tw", Shape::mat(64, 64), DType::Bf16, TensorKind::Generated);
        let y = b
            .node("mul", OpKind::Binary(BinaryKind::Mul), &[x, tw])
            .unwrap();
        b.mark_output(y);
        let g = b.build().unwrap();
        let n = g.node_ids().next().unwrap();
        assert_eq!(g.node_input_bytes(n), Bytes::new(64 * 64 * 2));
    }
}
