//! Monarch FFT decomposition graphs (Figure 3 and FlashFFTConv).
//!
//! The paper's motivating example (§III-A, Figure 3) is a simplified Monarch
//! FFT: an input is multiplied by a small DFT factor matrix, scaled by
//! twiddle factors, transposed, and multiplied by the second factor matrix.
//! Table I reports the operational intensity of this graph at three fusion
//! levels. The full FlashFFTConv benchmark (Table II) is the same pattern
//! applied forward and inverse around a pointwise filter, for sequences up
//! to 1M elements.
//!
//! Tensors are carried as `[groups, radix, radix]` views: each group is one
//! sequence's factor matrix, GEMMs contract the inner axis against the
//! small DFT factor, and the inter-level transpose permutes the two inner
//! axes — exactly the "arbitrary access pattern between operators" that
//! breaks conventional fusion (§III-A).
//!
//! Shape choices are documented on [`monarch_fig3`]; they are calibrated so
//! that the three Table I intensities land in the paper's regimes
//! (memory-bound / memory-bound / compute-bound on an A100-class roofline).

use crate::dtype::DType;
use crate::graph::{Graph, GraphBuilder};
use crate::op::{BinaryKind, OpKind, UnaryKind};
use crate::shape::Shape;
use crate::tensor::{TensorId, TensorKind};

/// Radix (DFT factor size) of the Figure 3 example.
pub const FIG3_RADIX: usize = 96;
/// Sequence groups of the Figure 3 example.
pub const FIG3_GROUPS: usize = 42;

/// Builds the simplified Monarch FFT of Figure 3.
///
/// Structure: `cast -> Gemm0(S1) -> Mul(twiddle) -> Transpose -> Gemm1(S2)
/// -> cast`. The input and output are real BF16; the pipeline computes in
/// complex BF16. Twiddle factors are [`TensorKind::Generated`] — the SN40L
/// tail unit computes them on-chip (§IV-E) — while the DFT factor matrices
/// are tiny (`radix x radix`) weights.
///
/// With `radix = 96` and 42 groups the analyzer reports intensities of
/// roughly 35 / 127 / 369 FLOPs per byte for the unfused /
/// contraction-anchored / fully-fused levels, reproducing the regime
/// structure of Table I (paper: 39.5 / 102.6 / 410.4).
pub fn monarch_fig3() -> Graph {
    monarch_fft(FIG3_GROUPS, FIG3_RADIX)
}

/// Builds a one-stage Monarch FFT over `groups` sequences of length
/// `radix^2`.
///
/// # Panics
///
/// Panics if `groups` or `radix` is zero (via shape validation).
pub fn monarch_fft(groups: usize, radix: usize) -> Graph {
    let mut b = GraphBuilder::new(format!("monarch-fft-{groups}x{radix}"));
    let view = Shape::new(vec![groups, radix, radix]);
    let x = b.tensor("X", view.clone(), DType::Bf16, TensorKind::Input);
    let s1 = b.tensor(
        "S1",
        Shape::mat(radix, radix),
        DType::ComplexBf16,
        TensorKind::Weight,
    );
    let s2 = b.tensor(
        "S2",
        Shape::mat(radix, radix),
        DType::ComplexBf16,
        TensorKind::Weight,
    );
    let twiddle = b.tensor("twiddle", view, DType::ComplexBf16, TensorKind::Generated);
    let xc = b
        .node_with_dtype(
            "to_complex",
            OpKind::Unary(UnaryKind::Cast),
            &[x],
            Some(DType::ComplexBf16),
        )
        .expect("cast shapes are valid");
    let g0 = b
        .node("gemm0", OpKind::Gemm { transpose_b: false }, &[xc, s1])
        .expect("gemm0 shapes are valid");
    let tw = b
        .node(
            "mul_twiddle",
            OpKind::Binary(BinaryKind::Mul),
            &[g0, twiddle],
        )
        .expect("twiddle mul shapes are valid");
    let tr = b
        .node(
            "transpose",
            OpKind::Transpose {
                perm: vec![0, 2, 1],
            },
            &[tw],
        )
        .expect("transpose shapes are valid");
    let g1 = b
        .node("gemm1", OpKind::Gemm { transpose_b: false }, &[tr, s2])
        .expect("gemm1 shapes are valid");
    let y = b
        .node_with_dtype(
            "to_real",
            OpKind::Unary(UnaryKind::Cast),
            &[g1],
            Some(DType::Bf16),
        )
        .expect("cast shapes are valid");
    b.mark_output(y);
    b.build().expect("graph is non-empty")
}

/// Builds the full FlashFFTConv graph: forward Monarch FFT, pointwise
/// multiplication with the (pre-transformed) filter, and inverse Monarch
/// FFT. `levels` is the decomposition order (2 for N = radix^2, 3 for
/// N = radix^3 — "higher order Monarch FFT decompositions" in §III-A).
///
/// `batch` independent sequences of length `radix^levels` are processed as
/// `[batch * radix^(levels-2), radix, radix]` group views, giving the
/// many-small-GEMMs structure the paper describes (32x32x32 or smaller
/// matrix multiplies at radix 32).
///
/// # Panics
///
/// Panics if `levels < 2`.
pub fn flash_fft_conv(batch: usize, radix: usize, levels: usize) -> Graph {
    assert!(levels >= 2, "monarch decomposition needs at least 2 levels");
    let seq_len: usize = radix.pow(levels as u32);
    let groups = batch * radix.pow(levels as u32 - 2);
    let view = Shape::new(vec![groups, radix, radix]);
    let mut b = GraphBuilder::new(format!("flashfftconv-{}", batch * seq_len));
    let x = b.tensor("X", view.clone(), DType::Bf16, TensorKind::Input);
    let filter = b.tensor(
        "filter_hat",
        view.clone(),
        DType::ComplexBf16,
        TensorKind::Weight,
    );
    let mut cur = b
        .node_with_dtype(
            "to_complex",
            OpKind::Unary(UnaryKind::Cast),
            &[x],
            Some(DType::ComplexBf16),
        )
        .expect("cast shapes are valid");

    let fft_pass = |b: &mut GraphBuilder, mut cur: TensorId, tag: &str| -> TensorId {
        for level in 0..levels {
            let s = b.tensor(
                format!("S_{tag}{level}"),
                Shape::mat(radix, radix),
                DType::ComplexBf16,
                TensorKind::Weight,
            );
            cur = b
                .node(
                    format!("{tag}_gemm{level}"),
                    OpKind::Gemm { transpose_b: false },
                    &[cur, s],
                )
                .expect("fft gemm shapes are valid");
            if level + 1 < levels {
                let tw = b.tensor(
                    format!("{tag}_twiddle{level}"),
                    view.clone(),
                    DType::ComplexBf16,
                    TensorKind::Generated,
                );
                cur = b
                    .node(
                        format!("{tag}_twiddle_mul{level}"),
                        OpKind::Binary(BinaryKind::Mul),
                        &[cur, tw],
                    )
                    .expect("twiddle shapes are valid");
                cur = b
                    .node(
                        format!("{tag}_transpose{level}"),
                        OpKind::Transpose {
                            perm: vec![0, 2, 1],
                        },
                        &[cur],
                    )
                    .expect("transpose shapes are valid");
            }
        }
        cur
    };

    cur = fft_pass(&mut b, cur, "fft");
    cur = b
        .node(
            "filter_mul",
            OpKind::Binary(BinaryKind::Mul),
            &[cur, filter],
        )
        .expect("filter mul shapes are valid");
    cur = fft_pass(&mut b, cur, "ifft");

    let y = b
        .node_with_dtype(
            "to_real",
            OpKind::Unary(UnaryKind::Cast),
            &[cur],
            Some(DType::Bf16),
        )
        .expect("cast shapes are valid");
    b.mark_output(y);
    b.build().expect("graph is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::{fusion_levels, FusionLevel};

    #[test]
    fn fig3_has_the_paper_structure() {
        let g = monarch_fig3();
        // cast, gemm0, mul, transpose, gemm1, cast.
        assert_eq!(g.node_count(), 6);
        let gemms = g.nodes().iter().filter(|n| n.op.is_gemm()).count();
        assert_eq!(gemms, 2);
    }

    #[test]
    fn fig3_reproduces_table1_regimes() {
        // Table I: unfused and partially fused are memory-bound on an
        // A100-class roofline (balance ~150 FLOPs/byte); fully fused is
        // compute-bound. Paper values: 39.5 / 102.6 / 410.4.
        let g = monarch_fig3();
        let levels = fusion_levels(&g);
        let none = levels[&FusionLevel::None];
        let partial = levels[&FusionLevel::Partial];
        let full = levels[&FusionLevel::Full];
        assert!(none < 60.0 && none > 20.0, "unfused {none}");
        assert!(partial < 150.0 && partial > 60.0, "partial {partial}");
        assert!(full > 300.0, "full {full}");
    }

    #[test]
    fn fftconv_scales_with_levels() {
        let two = flash_fft_conv(1, 32, 2);
        let three = flash_fft_conv(1, 32, 3);
        assert!(three.node_count() > two.node_count());
        assert!(three.total_flops() > two.total_flops());
    }

    #[test]
    fn fftconv_has_many_operators() {
        // §VIII-3: streaming dataflow pipelines commonly contain 20+
        // operators once decomposed; the 3-level FFT conv is the motivating
        // case (its full unfused form launches one kernel per operator).
        let g = flash_fft_conv(4, 32, 3);
        assert!(g.node_count() >= 15, "got {}", g.node_count());
    }

    #[test]
    fn fftconv_gemms_are_small() {
        // "many small matrix multiplies that are 32x32x32 or smaller".
        let g = flash_fft_conv(4, 32, 3);
        let mut gemms = 0;
        for n in g.nodes().iter().filter(|n| n.op.is_gemm()) {
            let w = &g.tensor(n.inputs[1]).shape;
            assert_eq!(w.dims(), &[32, 32]);
            gemms += 1;
        }
        assert_eq!(gemms, 6, "3 forward + 3 inverse factor multiplies");
    }

    #[test]
    fn fftconv_fusion_raises_intensity_dramatically() {
        let g = flash_fft_conv(4, 32, 3);
        let levels = fusion_levels(&g);
        let ratio = levels[&FusionLevel::Full] / levels[&FusionLevel::None];
        assert!(
            ratio > 5.0,
            "full fusion should transform intensity, got {ratio:.1}x"
        );
    }
}
