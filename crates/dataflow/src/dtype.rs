//! Element data types supported by the PCU/PMU datapaths (§IV-A: FP32,
//! BF16, INT32 in the SIMD stages, plus INT8 and complex BF16 for the FFT
//! workloads).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An element type carried on dataflow edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 16-bit brain floating point — the native GEMM type of the SN40L.
    Bf16,
    /// 32-bit IEEE floating point.
    Fp32,
    /// 32-bit integer (addresses, metadata, token ids).
    Int32,
    /// 8-bit integer (quantized weights).
    Int8,
    /// Complex number with BF16 real and imaginary parts (FFT workloads).
    ComplexBf16,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size_bytes(self) -> u64 {
        match self {
            DType::Bf16 => 2,
            DType::Fp32 => 4,
            DType::Int32 => 4,
            DType::Int8 => 1,
            DType::ComplexBf16 => 4,
        }
    }

    /// Real FLOPs per multiply-accumulate in this type (a complex MAC costs
    /// 4 multiplies and 4 adds).
    pub const fn flops_per_mac(self) -> u64 {
        match self {
            DType::ComplexBf16 => 8,
            _ => 2,
        }
    }

    /// Real FLOPs per elementwise multiply (a complex multiply costs 6).
    pub const fn flops_per_mul(self) -> u64 {
        match self {
            DType::ComplexBf16 => 6,
            _ => 1,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::Bf16 => "bf16",
            DType::Fp32 => "fp32",
            DType::Int32 => "int32",
            DType::Int8 => "int8",
            DType::ComplexBf16 => "cbf16",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_formats() {
        assert_eq!(DType::Bf16.size_bytes(), 2);
        assert_eq!(DType::Fp32.size_bytes(), 4);
        assert_eq!(DType::ComplexBf16.size_bytes(), 4);
        assert_eq!(DType::Int8.size_bytes(), 1);
    }

    #[test]
    fn complex_macs_cost_more() {
        assert_eq!(DType::Bf16.flops_per_mac(), 2);
        assert_eq!(DType::ComplexBf16.flops_per_mac(), 8);
        assert_eq!(DType::ComplexBf16.flops_per_mul(), 6);
    }
}
