//! Operational-intensity analysis (Table I of the paper).
//!
//! A *kernel partition* assigns every node of a graph to exactly one
//! kernel. Unfused execution gives each node its own kernel and
//! materializes every edge off-chip; fused kernels only pay off-chip
//! traffic at their boundary. Operational intensity is total FLOPs over
//! total off-chip bytes — the quantity that decides memory- versus
//! compute-boundedness on a roofline (§III-A).

use crate::graph::{Graph, NodeId};
use crate::op::AccessPattern;
use serde::{Deserialize, Serialize};
use sn_arch::Bytes;
use std::collections::HashMap;

/// A grouping of all graph nodes into kernels (inner `Vec`s are kernels in
/// execution order).
pub type KernelPartition = Vec<Vec<NodeId>>;

/// The three fusion levels of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FusionLevel {
    /// Every operator is its own kernel.
    None,
    /// Contraction-anchored fusion: each GEMM takes its streaming/reorder
    /// neighbors as prologue/epilogue (the strongest conventional fusion,
    /// "Gemm0 - Mul - Transpose" in Table I).
    Partial,
    /// The whole graph as a single spatially fused kernel (streaming
    /// dataflow).
    Full,
}

/// Builds the unfused partition: one kernel per node.
pub fn unfused_partition(graph: &Graph) -> KernelPartition {
    graph.node_ids().map(|n| vec![n]).collect()
}

/// Builds the contraction-anchored partition: the topological order is cut
/// immediately before every contraction except the first, so each kernel
/// carries exactly one GEMM plus its neighboring streaming/reorder/row-local
/// operators.
pub fn contraction_anchored_partition(graph: &Graph) -> KernelPartition {
    let mut partition: KernelPartition = Vec::new();
    let mut current: Vec<NodeId> = Vec::new();
    let mut seen_contraction = false;
    for nid in graph.node_ids() {
        let is_contraction = graph.node(nid).op.access_pattern() == AccessPattern::Contraction;
        if is_contraction && seen_contraction {
            partition.push(std::mem::take(&mut current));
            seen_contraction = false;
        }
        if is_contraction {
            seen_contraction = true;
        }
        current.push(nid);
    }
    if !current.is_empty() {
        partition.push(current);
    }
    partition
}

/// Builds the fully fused partition: one kernel holding every node.
pub fn fused_partition(graph: &Graph) -> KernelPartition {
    vec![graph.node_ids().collect()]
}

/// Total off-chip traffic of a partition: the sum of each kernel's boundary
/// bytes.
pub fn partition_traffic(graph: &Graph, partition: &KernelPartition) -> Bytes {
    partition
        .iter()
        .map(|k| graph.subset_boundary_bytes(k))
        .sum()
}

/// Operational intensity (FLOPs per off-chip byte) of a partition.
pub fn partition_intensity(graph: &Graph, partition: &KernelPartition) -> f64 {
    graph
        .total_flops()
        .intensity(partition_traffic(graph, partition))
}

/// Computes Table I: intensity at each of the three fusion levels.
pub fn fusion_levels(graph: &Graph) -> HashMap<FusionLevel, f64> {
    let mut m = HashMap::new();
    m.insert(
        FusionLevel::None,
        partition_intensity(graph, &unfused_partition(graph)),
    );
    m.insert(
        FusionLevel::Partial,
        partition_intensity(graph, &contraction_anchored_partition(graph)),
    );
    m.insert(
        FusionLevel::Full,
        partition_intensity(graph, &fused_partition(graph)),
    );
    m
}

/// Verifies that a partition covers every node exactly once; used by tests
/// and by the compiler's fusion pass as a sanity check.
pub fn is_valid_partition(graph: &Graph, partition: &KernelPartition) -> bool {
    let mut seen = vec![false; graph.node_count()];
    for kernel in partition {
        for &n in kernel {
            if n.index() >= seen.len() || seen[n.index()] {
                return false;
            }
            seen[n.index()] = true;
        }
    }
    seen.iter().all(|&s| s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;
    use crate::graph::GraphBuilder;
    use crate::op::{OpKind, UnaryKind};
    use crate::shape::Shape;
    use crate::tensor::TensorKind;

    fn chain() -> Graph {
        let mut b = GraphBuilder::new("chain");
        let x = b.tensor("x", Shape::mat(256, 256), DType::Bf16, TensorKind::Input);
        let w0 = b.tensor("w0", Shape::mat(256, 256), DType::Bf16, TensorKind::Weight);
        let w1 = b.tensor("w1", Shape::mat(256, 256), DType::Bf16, TensorKind::Weight);
        let g0 = b
            .node("gemm0", OpKind::Gemm { transpose_b: false }, &[x, w0])
            .unwrap();
        let a = b
            .node("act", OpKind::Unary(UnaryKind::Gelu), &[g0])
            .unwrap();
        let t = b
            .node("tr", OpKind::Transpose { perm: vec![1, 0] }, &[a])
            .unwrap();
        let g1 = b
            .node("gemm1", OpKind::Gemm { transpose_b: false }, &[t, w1])
            .unwrap();
        b.mark_output(g1);
        b.build().unwrap()
    }

    #[test]
    fn partitions_are_valid() {
        let g = chain();
        for p in [
            unfused_partition(&g),
            contraction_anchored_partition(&g),
            fused_partition(&g),
        ] {
            assert!(is_valid_partition(&g, &p));
        }
    }

    #[test]
    fn contraction_anchored_splits_before_second_gemm() {
        let g = chain();
        let p = contraction_anchored_partition(&g);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].len(), 3, "gemm0 + act + transpose");
        assert_eq!(p[1].len(), 1, "gemm1 alone");
    }

    #[test]
    fn intensity_increases_with_fusion() {
        let g = chain();
        let levels = fusion_levels(&g);
        assert!(levels[&FusionLevel::None] < levels[&FusionLevel::Partial]);
        assert!(levels[&FusionLevel::Partial] < levels[&FusionLevel::Full]);
    }

    #[test]
    fn traffic_decreases_with_fusion() {
        let g = chain();
        let t_none = partition_traffic(&g, &unfused_partition(&g));
        let t_part = partition_traffic(&g, &contraction_anchored_partition(&g));
        let t_full = partition_traffic(&g, &fused_partition(&g));
        assert!(t_none > t_part);
        assert!(t_part > t_full);
    }

    #[test]
    fn invalid_partitions_detected() {
        let g = chain();
        let ids: Vec<NodeId> = g.node_ids().collect();
        // Missing a node.
        assert!(!is_valid_partition(&g, &vec![ids[..2].to_vec()]));
        // Duplicated node.
        let mut dup = vec![ids.clone()];
        dup.push(vec![ids[0]]);
        assert!(!is_valid_partition(&g, &dup));
    }

    #[test]
    fn flops_are_partition_invariant() {
        let g = chain();
        // Intensity differences come from traffic only.
        let f = g.total_flops();
        for p in [unfused_partition(&g), fused_partition(&g)] {
            let sum: sn_arch::Flops = p.iter().map(|k| g.subset_flops(k)).sum();
            assert!((sum.as_f64() - f.as_f64()).abs() < 1.0);
        }
    }
}
