//! Tensor definitions: the values carried on dataflow-graph edges.

use crate::dtype::DType;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use sn_arch::Bytes;
use std::fmt;

/// Identifier of a tensor within one [`crate::Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TensorId(pub(crate) u32);

impl TensorId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The role a tensor plays; drives memory placement decisions (§V-A: weights
/// get priority to stay in HBM, activations spill first) and the runtime's
/// read-only copy-back elision (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorKind {
    /// Model parameter, read-only at inference time.
    Weight,
    /// Graph input supplied by the caller.
    Input,
    /// Graph output returned to the caller.
    Output,
    /// Intermediate value between operators.
    Activation,
    /// Key/value cache state, read-write, persists across decode steps.
    KvCache,
    /// Small metadata (masks, position ids, lookup tables).
    Metadata,
    /// Values generated on-chip (padding, twiddle factors, RNG) that never
    /// touch off-chip memory (§IV-E "efficient on-chip pad generation").
    Generated,
}

impl TensorKind {
    /// Whether the runtime may skip copying this tensor back to DDR when an
    /// expert is evicted from HBM (§V-B).
    pub fn is_read_only(self) -> bool {
        matches!(
            self,
            TensorKind::Weight | TensorKind::Metadata | TensorKind::Generated
        )
    }
}

/// A tensor declaration inside a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorDef {
    pub name: String,
    pub shape: Shape,
    pub dtype: DType,
    pub kind: TensorKind,
}

impl TensorDef {
    pub fn new(name: impl Into<String>, shape: Shape, dtype: DType, kind: TensorKind) -> Self {
        TensorDef {
            name: name.into(),
            shape,
            dtype,
            kind,
        }
    }

    /// Storage footprint of this tensor.
    pub fn bytes(&self) -> Bytes {
        Bytes::new(self.shape.elements() * self.dtype.size_bytes())
    }

    /// Whether this tensor contributes off-chip traffic when read at a
    /// fused-kernel boundary. [`TensorKind::Generated`] tensors never do.
    pub fn is_offchip(&self) -> bool {
        !matches!(self.kind, TensorKind::Generated)
    }
}

impl fmt::Display for TensorDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}{}", self.name, self.shape, self.dtype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_scale_with_dtype() {
        let s = Shape::new(vec![1024]);
        let bf = TensorDef::new("a", s.clone(), DType::Bf16, TensorKind::Activation);
        let fp = TensorDef::new("b", s, DType::Fp32, TensorKind::Activation);
        assert_eq!(bf.bytes(), Bytes::new(2048));
        assert_eq!(fp.bytes(), Bytes::new(4096));
    }

    #[test]
    fn weights_are_read_only() {
        assert!(TensorKind::Weight.is_read_only());
        assert!(!TensorKind::KvCache.is_read_only());
        assert!(!TensorKind::Activation.is_read_only());
    }

    #[test]
    fn generated_tensors_are_not_offchip() {
        let t = TensorDef::new(
            "twiddle",
            Shape::new(vec![64, 64]),
            DType::ComplexBf16,
            TensorKind::Generated,
        );
        assert!(!t.is_offchip());
    }
}
