//! Figure 12/13 and Tables I/III bench: prints the latency-vs-expert-count
//! series once, then times the comparison-model sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use sn_bench::experiments;
use sn_coe::comparison::{ComparisonModel, Platform};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for batch in [8usize, 1] {
        for p in experiments::fig12(batch) {
            let fmt = |t: Option<sn_arch::TimeSecs>| {
                t.map(|t| t.to_string())
                    .unwrap_or_else(|| "OOM".to_string())
            };
            println!(
                "fig12 bs{batch}: {:>4} experts  sn40l {:>12}  a100 {:>12}  h100 {:>12}",
                p.experts,
                fmt(p.sn40l),
                fmt(p.dgx_a100),
                fmt(p.dgx_h100)
            );
        }
    }
    for r in experiments::table3() {
        println!(
            "table3: {:<44} A {:>5.1}x (paper {:>4.1}x)  H {:>5.1}x (paper {:>4.1}x)",
            r.metric, r.vs_a100, r.paper_a100, r.vs_h100, r.paper_h100
        );
    }
    for (n, sn, a, h) in experiments::fig13() {
        println!("fig13: {n:>4} experts -> sn40l {sn}, dgx-a100 {a}, dgx-h100 {h}");
    }

    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("comparison_model_build", |b| {
        b.iter(|| black_box(ComparisonModel::new(1024)))
    });
    let model = ComparisonModel::new(1024);
    g.bench_function("latency_sweep_850", |b| {
        b.iter(|| {
            for n in 1..=850usize {
                for p in Platform::ALL {
                    black_box(model.request_latency(p, black_box(n), 8, 20));
                }
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
