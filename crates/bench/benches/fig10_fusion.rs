//! Figure 10/11 bench: prints the fusion-speedup series once, then times
//! compilation (the fusion + estimate pipeline) for representative
//! workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use sn_arch::{Calibration, SocketSpec};
use sn_bench::experiments;
use sn_compiler::{Compiler, FusionPolicy};
use sn_models::{build, Phase, TransformerConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for r in experiments::fig10() {
        println!(
            "fig10: {:<28} fusion {:>6.2}x  ho {:>6.2}x  kernel-ratio {:>6.1}x",
            r.name, r.fusion_speedup, r.ho_speedup, r.kernel_ratio
        );
    }
    let compiler = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    let prefill = build(
        &TransformerConfig::llama2_7b(),
        Phase::Prefill {
            prompt_tokens: 4096,
        },
        1,
        8,
    )
    .expect("prefill builds");
    g.bench_function("compile_llama7b_prefill_fused", |b| {
        b.iter(|| black_box(compiler.compile(black_box(&prefill), FusionPolicy::Spatial)))
    });
    g.bench_function("compile_llama7b_prefill_unfused", |b| {
        b.iter(|| black_box(compiler.compile(black_box(&prefill), FusionPolicy::Unfused)))
    });
    let decode = build(
        &TransformerConfig::llama2_7b(),
        Phase::Decode { past_tokens: 4096 },
        1,
        8,
    )
    .expect("decode builds");
    g.bench_function("compile_llama7b_decode_fused", |b| {
        b.iter(|| black_box(compiler.compile(black_box(&decode), FusionPolicy::Spatial)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
