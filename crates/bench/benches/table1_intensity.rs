//! Table I bench: operational-intensity analysis of the Monarch FFT
//! example. Prints the table once, then times the analysis pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use sn_bench::experiments;
use sn_dataflow::intensity::fusion_levels;
use sn_dataflow::monarch::{flash_fft_conv, monarch_fig3};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Emit the reproduced table alongside the timing run.
    for row in experiments::table1() {
        println!(
            "table1: {:<28} paper {:>7.1}  measured {:>7.1}",
            row.level, row.paper, row.measured
        );
    }
    let mut g = c.benchmark_group("table1");
    g.bench_function("fusion_levels_fig3", |b| {
        let graph = monarch_fig3();
        b.iter(|| black_box(fusion_levels(black_box(&graph))))
    });
    g.bench_function("fusion_levels_fftconv_3lvl", |b| {
        let graph = flash_fft_conv(8, 32, 3);
        b.iter(|| black_box(fusion_levels(black_box(&graph))))
    });
    g.bench_function("build_fig3_graph", |b| b.iter(|| black_box(monarch_fig3())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
