//! Ablation bench: prints the design-choice comparisons once, then times
//! the underlying simulators.

use criterion::{criterion_group, criterion_main, Criterion};
use sn_bench::ablations;
use sn_rdusim::pipeline::{PipelineSim, Stage};
use sn_rdusim::rdn::{Coord, Flow, FlowIdMode, NetConfig, NetSim};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for a in ablations::all() {
        println!(
            "ablation: {:<46} with {:>10.4}  without {:>10.4}  ({:.2}x, {})",
            a.name,
            a.with_feature,
            a.without_feature,
            a.factor(),
            a.unit
        );
    }

    let mut g = c.benchmark_group("simulators");
    g.sample_size(20);
    g.bench_function("rdn_crossing_flows", |b| {
        let sim = NetSim::new(NetConfig {
            flow_mode: FlowIdMode::Mpls,
            ..NetConfig::default()
        });
        let flows: Vec<Flow> = (0..6)
            .map(|i| Flow::unicast(Coord::new(0, i), Coord::new(7, 5 - i), 40))
            .collect();
        b.iter(|| black_box(sim.run(black_box(&flows))))
    });
    g.bench_function("pipeline_sim_1k_tiles", |b| {
        let sim = PipelineSim::new(vec![
            Stage::new("gemm0", 4, 2),
            Stage::new("mul", 1, 2),
            Stage::new("gemm1", 4, 2),
        ]);
        b.iter(|| black_box(sim.run(black_box(1000))))
    });
    g.bench_function("ablation_expert_cache", |b| {
        b.iter(|| black_box(ablations::expert_cache()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
