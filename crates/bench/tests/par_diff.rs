//! Differential tests for the deterministic parallel sweep engine: the
//! parallel path must return the *bit-identical* ordered output of the
//! sequential path for every sweep the `repro` binary fans out — the
//! serve offered-load sweep (across several arrival seeds), both fault
//! sweeps, and the full bench snapshot. These are the enforcement teeth
//! of the `sn_bench::par` contract; if a sweep point ever grows hidden
//! shared state, these fail before any user sees a jobs-dependent
//! report.

use sn_bench::faults::{cluster_fault_sweep_jobs, node_fault_sweep_jobs};
use sn_bench::profile::bench_snapshot_jobs;
use sn_bench::serve::{serve_sweep_jobs, serve_sweep_seeded_jobs, SWEEP_SEED};
use sn_bench::tenants::{tenants_sweep_jobs, tenants_sweep_seeded_jobs};

#[test]
fn serve_sweep_parallel_is_bit_identical_to_sequential() {
    let sequential = serve_sweep_jobs(1);
    for jobs in [2, 4] {
        assert_eq!(
            sequential,
            serve_sweep_jobs(jobs),
            "serve sweep diverged at {jobs} jobs"
        );
    }
}

#[test]
fn serve_sweep_parity_holds_across_arrival_seeds() {
    // Bit-identity must not be an artifact of the default seed's arrival
    // pattern: light and heavy congestion regimes both have to agree.
    for seed in [SWEEP_SEED, 1, 0xdead_beef] {
        assert_eq!(
            serve_sweep_seeded_jobs(seed, 1),
            serve_sweep_seeded_jobs(seed, 4),
            "serve sweep diverged for seed {seed:#x}"
        );
    }
}

#[test]
fn fault_sweeps_parallel_are_bit_identical_to_sequential() {
    assert_eq!(
        node_fault_sweep_jobs(1),
        node_fault_sweep_jobs(4),
        "node fault sweep diverged"
    );
    assert_eq!(
        cluster_fault_sweep_jobs(1),
        cluster_fault_sweep_jobs(4),
        "cluster fault sweep diverged"
    );
}

#[test]
fn tenants_sweep_parallel_is_bit_identical_to_sequential() {
    // The chaos scenario threads seeded randomness through arrival
    // processes, fault-plan draws, chaos windows, and the autoscaler —
    // the most state-rich sweep the binary fans out. It must still be a
    // pure function of (seed, load) per point.
    let sequential = tenants_sweep_jobs(1);
    for jobs in [2, 4] {
        assert_eq!(
            sequential,
            tenants_sweep_jobs(jobs),
            "tenants sweep diverged at {jobs} jobs"
        );
    }
    for seed in [1u64, 0xdead_beef] {
        assert_eq!(
            tenants_sweep_seeded_jobs(seed, 1),
            tenants_sweep_seeded_jobs(seed, 4),
            "tenants sweep diverged for seed {seed:#x}"
        );
    }
}

#[test]
fn obs_sweep_parallel_is_bit_identical_to_sequential() {
    // Each observed point carries its own telemetry pipeline (registry,
    // alert engine, flight recorder) built inside the sweep closure —
    // nothing shared, so the sweep table and every per-point alert and
    // bundle count must be jobs-invariant.
    let sequential = sn_bench::obs::obs_sweep_jobs(1);
    for jobs in [2, 4] {
        assert_eq!(
            sequential,
            sn_bench::obs::obs_sweep_jobs(jobs),
            "obs sweep diverged at {jobs} jobs"
        );
    }
}

#[test]
fn obs_export_json_is_deterministic() {
    // Byte-level: two independently constructed observed runs of the
    // focus point must serialize to the identical `sn-obs/v1` document
    // (BTreeMap-ordered series, fixed key order, shortest-round-trip
    // floats — no hash-order or pointer-order leaks anywhere).
    let (_, a, _) = sn_bench::obs::obs_focus_run();
    let (_, b, _) = sn_bench::obs::obs_focus_run();
    assert_eq!(a.to_json(), b.to_json(), "obs export diverged across runs");
}

#[test]
fn bench_snapshot_parallel_is_byte_identical_to_sequential() {
    // The strongest form: the serialized snapshot — every tracked metric,
    // in order, to the last digit — matches the legacy path, so the
    // continuous-bench gate holds no matter what --jobs CI runs with.
    assert_eq!(
        bench_snapshot_jobs(1).to_json(),
        bench_snapshot_jobs(4).to_json(),
        "bench snapshot diverged"
    );
}
