//! CLI contract tests for the `repro` binary, run against the built
//! executable via `std::process::Command`. These lock down the
//! machine-facing surface: bad invocations must fail loudly (non-zero
//! exit, a `usage:` line on stderr) instead of silently printing the
//! default experiment set.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn unknown_mode_exits_nonzero_with_usage() {
    let out = repro().arg("figure99").output().expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "unknown mode is exit code 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("figure99"),
        "stderr names the bad mode: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "stderr carries a usage line: {stderr}"
    );
    assert!(
        stderr.contains("serve"),
        "usage line advertises the serve mode: {stderr}"
    );
    assert!(out.stdout.is_empty(), "nothing on stdout for a bad mode");
}

#[test]
fn bad_jobs_values_are_usage_errors() {
    for bad in ["abc", "0", "-3", ""] {
        let out = repro()
            .args(["--jobs", bad, "serve"])
            .output()
            .expect("repro binary runs");
        assert_eq!(out.status.code(), Some(2), "--jobs {bad:?} is exit code 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--jobs") && stderr.contains("usage:"),
            "stderr explains the bad --jobs value: {stderr}"
        );
    }
}

#[test]
fn serve_report_is_byte_identical_across_jobs() {
    let run = |jobs: &str| {
        let out = repro()
            .args(["--jobs", jobs, "serve"])
            .output()
            .expect("repro binary runs");
        assert_eq!(out.status.code(), Some(0), "serve --jobs {jobs} succeeds");
        out.stdout
    };
    let sequential = run("1");
    assert_eq!(
        sequential,
        run("4"),
        "serve output must not depend on --jobs"
    );
}

#[test]
fn timed_serve_prints_the_wall_clock_comparison() {
    let out = repro()
        .args(["--jobs", "2", "--time", "serve"])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("sweep wall-clock:") && stdout.contains("at 1 job"),
        "--time adds the 1-job vs N-jobs timing line: {stdout}"
    );
}

#[test]
fn usage_line_advertises_the_tenants_mode() {
    let out = repro().arg("nonsense").output().expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("tenants"),
        "usage line advertises the tenants mode: {stderr}"
    );
}

#[test]
fn bad_jobs_with_tenants_is_a_usage_error() {
    let out = repro()
        .args(["--jobs", "zero", "tenants"])
        .output()
        .expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "bad --jobs is exit code 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--jobs") && stderr.contains("usage:"),
        "stderr explains the bad --jobs value: {stderr}"
    );
    assert!(out.stdout.is_empty(), "no table printed on a usage error");
}

#[test]
fn tenants_report_is_byte_identical_across_jobs() {
    let run = |jobs: &str| {
        let out = repro()
            .args(["--jobs", jobs, "tenants"])
            .output()
            .expect("repro binary runs");
        assert_eq!(out.status.code(), Some(0), "tenants --jobs {jobs} succeeds");
        out.stdout
    };
    let sequential = run("1");
    assert_eq!(
        sequential,
        run("4"),
        "tenants output must not depend on --jobs"
    );
    let stdout = String::from_utf8_lossy(&sequential);
    assert!(
        stdout.contains("MULTI-TENANT CHAOS") && stdout.contains("Int p99"),
        "tenants prints the per-class SLO table: {stdout}"
    );
}

#[test]
fn obs_mode_and_export_are_byte_identical_across_jobs() {
    // One shared export path: the printed "wrote <path>" line is part of
    // the byte-identity contract, so it must not vary with --jobs.
    let path = std::env::temp_dir().join(format!("repro_cli_obs_{}.json", std::process::id()));
    let run = |jobs: &str| {
        let out = repro()
            .args(["--jobs", jobs, "--obs"])
            .arg(&path)
            .arg("obs")
            .output()
            .expect("repro binary runs");
        assert_eq!(out.status.code(), Some(0), "obs --jobs {jobs} succeeds");
        let json = std::fs::read(&path).expect("--obs writes the export");
        let _ = std::fs::remove_file(&path);
        (out.stdout, json)
    };
    let (seq_stdout, seq_json) = run("1");
    let (par_stdout, par_json) = run("4");
    assert_eq!(
        seq_stdout, par_stdout,
        "obs output must not depend on --jobs"
    );
    assert_eq!(seq_json, par_json, "--obs export must not depend on --jobs");

    let stdout = String::from_utf8_lossy(&seq_stdout);
    assert!(
        stdout.contains("OBSERVABILITY") && stdout.contains("alert timeline:"),
        "obs prints the sweep table and alert timeline: {stdout}"
    );
    assert!(
        stdout.contains("firing") && stdout.contains("resolved"),
        "the seeded chaos run fires and resolves an alert: {stdout}"
    );
    assert!(
        stdout.contains("post-mortem bundles:"),
        "obs prints the captured bundles: {stdout}"
    );

    // The export schema-validates with the vendored JSON parser.
    let text = String::from_utf8(seq_json).expect("export is UTF-8");
    let doc = sn_trace::json::parse(&text).expect("export parses as JSON");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("sn-obs/v1"),
        "export carries the schema tag"
    );
    for key in ["series", "alerts", "postmortems"] {
        assert!(
            doc.get(key).and_then(|v| v.as_array()).is_some(),
            "export carries a {key} array"
        );
    }
    assert!(
        doc.get("waves").and_then(|v| v.as_f64()).unwrap_or(0.0) > 0.0,
        "export records the observed wave count"
    );
}

#[test]
fn obs_flag_without_a_path_is_a_usage_error() {
    let out = repro().arg("--obs").output().expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "bare --obs is exit code 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--obs") && stderr.contains("usage:"),
        "stderr explains the missing --obs path: {stderr}"
    );
}

#[test]
fn bench_check_passes_vacuously_on_an_info_only_snapshot() {
    // A snapshot whose rows are all info entries (no "tolerance" field)
    // has nothing to gate: the comparison must skip every row and pass,
    // not trip on the missing tracked metrics.
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../scripts/fixtures/info_only.json"
    );
    let out = repro()
        .args(["--bench-check", fixture, fixture])
        .output()
        .expect("repro binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "info-only snapshot passes the gate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("bench check PASSED"),
        "the vacuous comparison still reports PASSED: {stdout}"
    );
}

#[test]
fn surrogate_report_is_byte_identical_across_jobs() {
    let run = |jobs: &str| {
        let out = repro()
            .args(["--jobs", jobs, "surrogate"])
            .output()
            .expect("repro binary runs");
        assert_eq!(
            out.status.code(),
            Some(0),
            "surrogate --jobs {jobs} succeeds"
        );
        out.stdout
    };
    let sequential = run("1");
    assert_eq!(
        sequential,
        run("2"),
        "surrogate output must not depend on --jobs"
    );
    let stdout = String::from_utf8_lossy(&sequential);
    assert!(
        stdout.contains("SURROGATE") && stdout.contains("calibration anchors"),
        "surrogate prints the anchor table: {stdout}"
    );
    assert!(
        stdout.contains("gate: PASS"),
        "every spot-check error is within its committed budget: {stdout}"
    );
}

#[test]
fn usage_line_advertises_the_surrogate_mode() {
    let out = repro().arg("nonsense").output().expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("surrogate"),
        "usage line advertises the surrogate mode: {stderr}"
    );
}

#[test]
fn bench_check_without_baseline_is_a_usage_error() {
    let out = repro()
        .arg("--bench-check")
        .output()
        .expect("repro binary runs");
    assert_ne!(out.status.code(), Some(0), "missing baseline must fail");
    assert!(
        !out.stderr.is_empty(),
        "missing baseline explains itself on stderr"
    );
}
