//! CLI contract tests for the `repro` binary, run against the built
//! executable via `std::process::Command`. These lock down the
//! machine-facing surface: bad invocations must fail loudly (non-zero
//! exit, a `usage:` line on stderr) instead of silently printing the
//! default experiment set.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn unknown_mode_exits_nonzero_with_usage() {
    let out = repro().arg("figure99").output().expect("repro binary runs");
    assert_eq!(out.status.code(), Some(2), "unknown mode is exit code 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("figure99"),
        "stderr names the bad mode: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "stderr carries a usage line: {stderr}"
    );
    assert!(
        stderr.contains("serve"),
        "usage line advertises the serve mode: {stderr}"
    );
    assert!(out.stdout.is_empty(), "nothing on stdout for a bad mode");
}

#[test]
fn bench_check_without_baseline_is_a_usage_error() {
    let out = repro()
        .arg("--bench-check")
        .output()
        .expect("repro binary runs");
    assert_ne!(out.status.code(), Some(0), "missing baseline must fail");
    assert!(
        !out.stderr.is_empty(),
        "missing baseline explains itself on stderr"
    );
}
