//! Differential harness for intra-run parallelism: everything the
//! cluster serving path produces — tenancy reports, wave-outcome
//! streams, batch reports, trace counters, obs exports, bench info —
//! must be **byte-identical** at every `--intra-jobs` value. The lane
//! engine (`sn_coe::lanes`) argues this structurally (stateful work
//! stays sequential on the coordinator; lanes run pure per-node float
//! chains); this harness is the enforcement: hundreds of generated
//! cases sweeping seeds × topologies × chaos schedules × job counts,
//! with `CaseRng` shrinking down to a minimal diverging scenario.

#[path = "../../../tests/common/mod.rs"]
mod common;

use common::topology::ClusterTopology;
use common::{check_cases, CaseRng};
use sn_arch::TimeSecs;
use sn_bench::tenants;
use sn_coe::scheduler::{ArrivalPattern, ArrivalProcess, SchedulerConfig};
use sn_coe::{
    ClassPolicy, PolicyConfig, PromptGenerator, RateLimit, ServingPolicies, SloClass,
    TenancyConfig, TenancyReport, TenantSpec, WaveOutcome, WaveSlot,
};
use sn_faults::{ChaosSchedule, FaultSite, FaultSpec};
use sn_trace::Tracer;

/// Job counts every case is swept across; 1 is the sequential
/// reference the others must match bit-for-bit.
const JOB_COUNTS: [usize; 3] = [1, 2, 4];

/// Worker threads for the property harness itself (batch boundaries
/// are fixed, so the verdict is jobs-invariant).
const HARNESS_JOBS: usize = 4;

// ---------------------------------------------------------------------
// Property 1: full tenancy runs (chaos + autoscaler-free), with trace
// counters and optional serving policies riding along.
// ---------------------------------------------------------------------

/// One generated end-to-end tenancy scenario.
#[derive(Debug, Clone)]
struct TenancyDiffCase {
    topology: ClusterTopology,
    seed: u64,
    interactive_requests: usize,
    batch_requests: usize,
    per_node_slots: usize,
    wave_tokens: usize,
    /// Attach a [`ServingPolicies`] bundle (prefetch + placement + the
    /// topology's paged-KV budget) — the policy path routes through the
    /// same memoized-route boundary the lane engine uses.
    policies: bool,
    /// 0 = none, 1 = outage, 2 = fabric fault window, 3 = both.
    chaos: u8,
}

fn gen_tenancy_case(rng: &mut CaseRng) -> TenancyDiffCase {
    TenancyDiffCase {
        topology: ClusterTopology::generate(rng),
        seed: rng.next_u64(),
        interactive_requests: rng.usize_in(0, 24),
        batch_requests: rng.usize_in(0, 16),
        per_node_slots: rng.usize_in(1, 5),
        wave_tokens: rng.usize_in(1, 9),
        policies: rng.f64() < 0.5,
        chaos: rng.usize_in(0, 4) as u8,
    }
}

fn shrink_tenancy_case(case: &TenancyDiffCase) -> Vec<TenancyDiffCase> {
    let mut out: Vec<TenancyDiffCase> = case
        .topology
        .shrink()
        .into_iter()
        .map(|topology| TenancyDiffCase {
            topology,
            ..case.clone()
        })
        .collect();
    if case.chaos != 0 {
        out.push(TenancyDiffCase {
            chaos: 0,
            ..case.clone()
        });
    }
    if case.policies {
        out.push(TenancyDiffCase {
            policies: false,
            ..case.clone()
        });
    }
    if case.interactive_requests > 0 {
        out.push(TenancyDiffCase {
            interactive_requests: case.interactive_requests / 2,
            ..case.clone()
        });
    }
    if case.batch_requests > 0 {
        out.push(TenancyDiffCase {
            batch_requests: case.batch_requests / 2,
            ..case.clone()
        });
    }
    out
}

fn case_chaos(case: &TenancyDiffCase) -> Option<ChaosSchedule> {
    if case.chaos == 0 {
        return None;
    }
    let mut chaos = ChaosSchedule::new(case.seed);
    if case.chaos & 1 != 0 {
        chaos = chaos.with_outage(
            &[1],
            TimeSecs::from_secs(0.02),
            Some(TimeSecs::from_secs(0.4)),
        );
    }
    if case.chaos & 2 != 0 {
        chaos = chaos.with_window(
            FaultSite::SocketLink,
            FaultSpec {
                fail_rate: 0.15,
                slow_rate: 0.25,
                slow_factor: 1.5,
            },
            TimeSecs::ZERO,
            TimeSecs::from_secs(0.5),
        );
    }
    Some(chaos)
}

/// Runs the case at one `intra_jobs` value and returns everything the
/// run produced: the tenancy report and the rendered trace-counter
/// table (string compare = byte compare).
fn tenancy_run(
    case: &TenancyDiffCase,
    intra_jobs: usize,
) -> Result<(TenancyReport, String), String> {
    let tracer = Tracer::enabled();
    let mut cluster = case
        .topology
        .build_jobs(intra_jobs)
        .with_tracer(tracer.clone());
    let config = TenancyConfig {
        seed: case.seed,
        prompt_tokens: case.topology.prompt_tokens,
        wave_tokens: case.wave_tokens,
        per_node_slots: case.per_node_slots,
        interactive: ClassPolicy {
            queue_cap: 32,
            deadline: TimeSecs::from_millis(400.0),
            slo_bound: TimeSecs::from_millis(250.0),
            chunks: 1,
        },
        batch: ClassPolicy {
            queue_cap: 32,
            deadline: TimeSecs::from_secs(30.0),
            slo_bound: TimeSecs::from_secs(10.0),
            chunks: 2,
        },
        max_waves: 10_000,
    };
    let tenant_specs = [
        TenantSpec {
            name: "i".into(),
            class: SloClass::Interactive,
            pattern: ArrivalPattern::Poisson { rate_rps: 150.0 },
            requests: case.interactive_requests,
            rate_limit: RateLimit::unlimited(),
        },
        TenantSpec {
            name: "b".into(),
            class: SloClass::Batch,
            pattern: ArrivalPattern::Burst,
            requests: case.batch_requests,
            rate_limit: RateLimit::unlimited(),
        },
    ];
    let chaos = case_chaos(case);
    let mut policies = case.policies.then(|| {
        ServingPolicies::new(
            case.topology.experts,
            PolicyConfig {
                kv: Some(case.topology.kv_config()),
                ..PolicyConfig::default()
            },
        )
    });
    let report = cluster
        .serve_tenants_with_policies(
            &tenant_specs,
            &config,
            chaos.as_ref(),
            None,
            policies.as_mut(),
        )
        .map_err(|e| format!("serve_tenants failed at {intra_jobs} jobs: {e:?}"))?;
    Ok((report, tracer.metrics().render_table()))
}

/// ≥100 generated chaos scenarios, each served at every job count: the
/// tenancy report (every record, shed, timing, and counter field) and
/// the rendered trace table must match the sequential run exactly.
#[test]
fn property_tenancy_reports_are_intra_jobs_invariant() {
    check_cases(
        "tenancy runs are intra-jobs invariant",
        60,
        0x0001_a7e5_d1ff,
        HARNESS_JOBS,
        gen_tenancy_case,
        shrink_tenancy_case,
        || (),
        |(), case| {
            let reference = tenancy_run(case, 1)?;
            for &jobs in &JOB_COUNTS[1..] {
                let got = tenancy_run(case, jobs)?;
                if got.0 != reference.0 {
                    return Err(format!(
                        "tenancy report diverged at intra-jobs {jobs}: \
                         waves {} vs {}, records {} vs {}, makespan {} vs {}",
                        got.0.waves,
                        reference.0.waves,
                        got.0.records.len(),
                        reference.0.records.len(),
                        got.0.makespan,
                        reference.0.makespan,
                    ));
                }
                if got.1 != reference.1 {
                    return Err(format!(
                        "trace counters diverged at intra-jobs {jobs}:\n{}\nvs\n{}",
                        got.1, reference.1
                    ));
                }
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Property 2: raw wave streams with mid-run failures and restores.
// ---------------------------------------------------------------------

/// One generated serve_wave / serve_batch schedule.
#[derive(Debug, Clone)]
struct WaveDiffCase {
    topology: ClusterTopology,
    seed: u64,
    waves: usize,
    slots_per_wave: usize,
    wave_tokens: usize,
    /// Fail node 0 at this wave (and restore it two waves later) —
    /// exercises the degraded preamble and failover adoption inside the
    /// lane engine's dispatcher.
    fail_at: Option<usize>,
}

fn gen_wave_case(rng: &mut CaseRng) -> WaveDiffCase {
    let waves = rng.usize_in(1, 8);
    WaveDiffCase {
        topology: ClusterTopology::generate(rng),
        seed: rng.next_u64(),
        waves,
        slots_per_wave: rng.usize_in(1, 48),
        wave_tokens: rng.usize_in(1, 9),
        fail_at: if rng.f64() < 0.4 {
            Some(rng.usize_in(0, waves))
        } else {
            None
        },
    }
}

fn shrink_wave_case(case: &WaveDiffCase) -> Vec<WaveDiffCase> {
    let mut out: Vec<WaveDiffCase> = case
        .topology
        .shrink()
        .into_iter()
        .map(|topology| WaveDiffCase {
            topology,
            ..case.clone()
        })
        .collect();
    if case.fail_at.is_some() {
        out.push(WaveDiffCase {
            fail_at: None,
            ..case.clone()
        });
    }
    if case.waves > 1 {
        out.push(WaveDiffCase {
            waves: case.waves / 2,
            fail_at: case.fail_at.filter(|&w| w < case.waves / 2),
            ..case.clone()
        });
    }
    if case.slots_per_wave > 1 {
        out.push(WaveDiffCase {
            slots_per_wave: case.slots_per_wave / 2,
            ..case.clone()
        });
    }
    out
}

/// Serves the schedule at one job count: a wave stream with the
/// scripted failure/restore, then one `serve_batch` on the warmed
/// cluster (covering the batch path's memoized route pass too).
/// Errors are part of the compared stream — an all-down wave must
/// return the identical `NoHealthyNodes` at every job count.
fn wave_run(case: &WaveDiffCase, intra_jobs: usize) -> (Vec<Result<WaveOutcome, String>>, String) {
    let mut cluster = case.topology.build_jobs(intra_jobs);
    let mut prompts = PromptGenerator::new(case.seed, case.topology.prompt_tokens);
    let mut outcomes = Vec::with_capacity(case.waves);
    for wave in 0..case.waves {
        if case.fail_at == Some(wave) {
            cluster.fail_node(0);
        }
        if case.fail_at.map(|w| w + 2) == Some(wave) {
            cluster.restore_node(0);
        }
        let slots: Vec<WaveSlot> = prompts
            .batch(case.slots_per_wave)
            .into_iter()
            .enumerate()
            .map(|(i, prompt)| WaveSlot {
                prompt,
                prefill: (i + wave) % 3 != 0,
            })
            .collect();
        outcomes.push(
            cluster
                .serve_wave(&slots, case.wave_tokens)
                .map_err(|e| format!("{e:?}")),
        );
    }
    let batch_report = if cluster.healthy_nodes() > 0 {
        let batch = prompts.batch(case.slots_per_wave.max(1));
        format!("{:?}", cluster.serve_batch(&batch, case.wave_tokens))
    } else {
        "all nodes down".to_string()
    };
    (outcomes, batch_report)
}

/// ≥100 generated wave schedules (including mid-run crash/restore),
/// each served at every job count: every `WaveOutcome` — placements,
/// per-node busy times, latency, hit/miss counters — and the follow-up
/// batch report must be bit-identical to the sequential run.
#[test]
fn property_wave_streams_are_intra_jobs_invariant() {
    check_cases(
        "wave streams are intra-jobs invariant",
        60,
        0x0a0e_57f3,
        HARNESS_JOBS,
        gen_wave_case,
        shrink_wave_case,
        || (),
        |(), case| {
            let reference = wave_run(case, 1);
            for &jobs in &JOB_COUNTS[1..] {
                let got = wave_run(case, jobs);
                if got.0 != reference.0 {
                    let wave = got
                        .0
                        .iter()
                        .zip(&reference.0)
                        .position(|(a, b)| a != b)
                        .unwrap_or(reference.0.len().min(got.0.len()));
                    return Err(format!(
                        "wave stream diverged at intra-jobs {jobs}, first at wave {wave}"
                    ));
                }
                if got.1 != reference.1 {
                    return Err(format!("batch report diverged at intra-jobs {jobs}"));
                }
            }
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Fixed differential anchors on the bench-scale scenarios.
// ---------------------------------------------------------------------

/// The full chaos sweep point (6-node cluster, outage + fault window +
/// autoscaler) at several seeds: the complete report must be
/// bit-identical across job counts.
#[test]
fn tenants_chaos_scenario_is_intra_jobs_invariant() {
    for seed in [tenants::SWEEP_SEED, 1, 0xdead_beef] {
        let reference = tenants::tenants_report_seeded_intra(seed, 2.0, 1);
        for &jobs in &JOB_COUNTS[1..] {
            assert_eq!(
                reference,
                tenants::tenants_report_seeded_intra(seed, 2.0, jobs),
                "tenants chaos report diverged at intra-jobs {jobs}, seed {seed:#x}"
            );
        }
    }
}

/// The observability pipeline reads serving state at wave boundaries;
/// its exported `sn-obs/v1` document (series, alerts, post-mortems)
/// must come out byte-identical at any intra-job count.
#[test]
fn obs_export_is_intra_jobs_invariant() {
    let run = |intra_jobs: usize| {
        let mut cluster = tenants::sweep_cluster_intra(intra_jobs);
        let mut config = tenants::sweep_config();
        config.seed = tenants::SWEEP_SEED;
        let chaos = tenants::sweep_chaos(tenants::SWEEP_SEED);
        let mut controller = tenants::sweep_controller();
        let obs = sn_obs::Obs::enabled(sn_bench::obs::obs_config(2.0));
        let report = cluster
            .serve_tenants_observed(
                &tenants::sweep_tenants(2.0),
                &config,
                Some(&chaos),
                Some(&mut controller),
                None,
                &obs,
            )
            .expect("observed scenario serves");
        (report, obs.finalize().expect("enabled pipeline").to_json())
    };
    let (report_seq, json_seq) = run(1);
    for &jobs in &JOB_COUNTS[1..] {
        let (report, json) = run(jobs);
        assert_eq!(
            report_seq, report,
            "observed tenancy report diverged at intra-jobs {jobs}"
        );
        assert_eq!(
            json_seq, json,
            "obs export bytes diverged at intra-jobs {jobs}"
        );
    }
}

// ---------------------------------------------------------------------
// Committed snapshot: the intra speedup landed with zero metric drift.
// ---------------------------------------------------------------------

fn committed_snapshot(name: &str) -> sn_profile::BenchSnapshot {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    sn_profile::BenchSnapshot::from_json(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"))
}

/// The committed PR 9 snapshot must carry the intra-run timing rows
/// (wall-clock per job count, speedups above 1.0, and the run digest)
/// while every *tracked* metric stays exactly the PR 7 baseline — the
/// speedup was not bought with a single drifted number.
#[test]
fn committed_bench_pr9_records_intra_speedup_with_zero_metric_drift() {
    let pr9 = committed_snapshot("BENCH_PR9.json");
    let pr7 = committed_snapshot("BENCH_PR7.json");
    assert_eq!(
        pr7.metrics, pr9.metrics,
        "tracked metrics drifted between BENCH_PR7.json and BENCH_PR9.json"
    );
    let info = |key: &str| -> &str {
        pr9.info
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .unwrap_or_else(|| panic!("BENCH_PR9.json missing info row {key}"))
    };
    assert_eq!(info("intra_digest").len(), 16, "16-hex-digit run digest");
    info("intra_wall_ms_1jobs");
    for jobs in [2usize, 4] {
        info(&format!("intra_wall_ms_{jobs}jobs"));
        let speedup: f64 = info(&format!("intra_speedup_{jobs}jobs"))
            .parse()
            .expect("numeric speedup row");
        assert!(
            speedup > 1.0,
            "intra-jobs {jobs} must beat the sequential wall-clock, got {speedup}x"
        );
    }
}

/// serve_online on a single node routes through the same memoized
/// route-one boundary; the scheduler's reports must not move either.
#[test]
fn serve_online_is_intra_jobs_invariant() {
    for seed in [0x5eed_u64, 0xcafe] {
        let run = |intra_jobs: usize| {
            let mut node = ClusterTopology {
                nodes: 2,
                experts: 150,
                prompt_tokens: 512,
                grown_nodes: 0,
                rebalanced: false,
                failed_node: None,
                kv_budget_pages: 16,
            }
            .build_node()
            .with_intra_jobs(intra_jobs);
            let requests = ArrivalProcess::poisson(seed, 512, 40.0).generate(12);
            node.serve_online(&requests, 12, SchedulerConfig::bounded(4))
        };
        let reference = run(1);
        for &jobs in &JOB_COUNTS[1..] {
            assert_eq!(
                reference,
                run(jobs),
                "serve_online diverged at intra-jobs {jobs}, seed {seed:#x}"
            );
        }
    }
}
