//! Observability sweep (`repro obs`): the multi-tenant chaos scenario of
//! [`crate::tenants`] replayed with the `sn-obs` telemetry pipeline
//! enabled — labeled per-tenant series sampled at wave boundaries,
//! SLO burn-rate alert rules, and post-mortem flight-recorder bundles
//! around the correlated outage.
//!
//! Every sweep point runs the scenario **twice**, once observed and once
//! blind, and asserts the two [`TenancyReport`]s are bit-identical: the
//! pipeline only reads serving state, never steers it, so watching the
//! system cannot change what the system does. Points remain pure
//! functions of `(seed, load)` and route through the ordered-merge
//! engine, so tables, dashboards, and `--obs` JSON exports are
//! byte-identical for every `--jobs` value.

use crate::tenants::{
    sweep_chaos, sweep_config, sweep_controller, sweep_tenants, SWEEP_EXPERTS, SWEEP_LOADS,
    SWEEP_NODES, SWEEP_PROMPT_TOKENS, SWEEP_SEED,
};
use sn_arch::NodeSpec;
use sn_coe::{CoeCluster, ExpertLibrary, TenancyReport};
use sn_obs::{
    sparkline, AlertCondition, AlertKind, AlertRule, LabelSet, Obs, ObsConfig, ObsReport,
    RecorderConfig, SeriesKey,
};

/// Load multiplier the detailed dashboard (and `--obs` export) focuses
/// on: heavy enough that the outage burns real error budget.
pub const OBS_FOCUS_LOAD: f64 = 4.0;

/// Error budget of the burn-rate rules: 5% of outcomes may blow their
/// SLO (shed or finish late) before a tenant's budget is gone.
pub const OBS_ERROR_BUDGET: f64 = 0.05;

/// Fast burn-rate window, in waves (detection + resolution).
pub const OBS_FAST_WINDOW: usize = 8;

/// Slow burn-rate window, in waves (guards against one-wave blips).
pub const OBS_SLOW_WINDOW: usize = 32;

/// Burn-rate multiple that fires a tenant's SLO alert.
pub const OBS_BURN_FACTOR: f64 = 4.0;

/// Waves the flight recorder keeps capturing after an incident opens.
pub const OBS_TAIL_WAVES: usize = 30;

/// The alert rules the scenario watches: one SLO burn-rate rule per
/// tenant over its `slo_bad` / `slo_total` counters, a shed-rate guard
/// per class, and an HBM-hit-rate floor on the cluster gauge.
pub fn obs_rules(load: f64) -> Vec<AlertRule> {
    let mut rules = Vec::new();
    for tenant in sweep_tenants(load) {
        let labels = [
            ("slo_class", tenant.class.name()),
            ("tenant", tenant.name.as_str()),
        ];
        rules.push(AlertRule {
            name: format!("slo_burn:{}", tenant.name),
            labels: LabelSet::from_pairs(&labels),
            condition: AlertCondition::BurnRate {
                bad: SeriesKey::new("slo_bad", &labels),
                total: SeriesKey::new("slo_total", &labels),
                budget: OBS_ERROR_BUDGET,
                fast_window: OBS_FAST_WINDOW,
                slow_window: OBS_SLOW_WINDOW,
                factor: OBS_BURN_FACTOR,
            },
        });
    }
    for class in ["interactive", "batch"] {
        rules.push(AlertRule {
            name: format!("shed_rate:{class}"),
            labels: LabelSet::from_pairs(&[("slo_class", class)]),
            condition: AlertCondition::RatioAbove {
                bad: SeriesKey::new("requests_shed", &[("slo_class", class)]),
                total: SeriesKey::new("slo_total", &[("slo_class", class)]),
                threshold: 0.5,
                window: OBS_FAST_WINDOW,
            },
        });
    }
    rules.push(AlertRule {
        name: "hbm_hit_floor".into(),
        labels: LabelSet::empty(),
        condition: AlertCondition::GaugeBelow {
            series: SeriesKey::new("hbm_hit_rate", &[]),
            threshold: 0.10,
            window: OBS_SLOW_WINDOW,
        },
    });
    rules
}

/// The pipeline configuration every observed point shares.
pub fn obs_config(load: f64) -> ObsConfig {
    ObsConfig {
        registry: Default::default(),
        recorder: RecorderConfig {
            ring_capacity: 256,
            tail_waves: OBS_TAIL_WAVES,
        },
        rules: obs_rules(load),
    }
}

fn run_scenario(seed: u64, load: f64, obs: &Obs) -> TenancyReport {
    let mut cluster = CoeCluster::new(
        NodeSpec::sn40l_node(),
        SWEEP_NODES,
        ExpertLibrary::new(SWEEP_EXPERTS),
        SWEEP_PROMPT_TOKENS,
    )
    .expect("sweep library fits the starting cluster");
    let mut config = sweep_config();
    config.seed = seed;
    let chaos = sweep_chaos(seed);
    let mut controller = sweep_controller();
    cluster
        .serve_tenants_observed(
            &sweep_tenants(load),
            &config,
            Some(&chaos),
            Some(&mut controller),
            None,
            obs,
        )
        .expect("tenant scenario serves")
}

/// Runs one `(seed, load)` point observed and returns both reports plus
/// whether the observed serving run was bit-identical to a blind one.
pub fn obs_run_seeded(seed: u64, load: f64) -> (TenancyReport, ObsReport, bool) {
    let obs = Obs::enabled(obs_config(load));
    let observed = run_scenario(seed, load, &obs);
    let report = obs.finalize().expect("enabled pipeline finalizes");
    let blind = run_scenario(seed, load, &Obs::disabled());
    let identical = observed == blind;
    (observed, report, identical)
}

/// One row of the observability sweep table.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsSweepPoint {
    /// Offered-load multiplier.
    pub load: f64,
    /// Serving waves executed.
    pub waves: usize,
    /// Labeled series the registry accumulated.
    pub series: usize,
    /// Raw samples across all series.
    pub samples: u64,
    /// Alert rules that transitioned to firing.
    pub fired: usize,
    /// Alert rules that transitioned back to resolved.
    pub resolved: usize,
    /// Post-mortem bundles frozen.
    pub postmortems: usize,
    /// Requests shed (from the serving report, for cross-checking).
    pub shed: usize,
    /// Whether the observed run was bit-identical to a blind run.
    pub identical: bool,
}

/// Summarizes one sweep point at `load`.
pub fn obs_point_seeded(seed: u64, load: f64) -> ObsSweepPoint {
    let (serving, report, identical) = obs_run_seeded(seed, load);
    ObsSweepPoint {
        load,
        waves: serving.waves,
        series: report.series.len(),
        samples: report.series.iter().map(|(_, b)| b.total_samples()).sum(),
        fired: report.alerts_of(AlertKind::Firing).count(),
        resolved: report.alerts_of(AlertKind::Resolved).count(),
        postmortems: report.postmortems.len(),
        shed: serving.shed.len(),
        identical,
    }
}

/// The full load sweep over [`SWEEP_LOADS`], fanned across `jobs`
/// worker threads via the ordered-merge engine. Bit-identical for every
/// `jobs` value: each point builds its own cluster, chaos schedule,
/// controller, and pipeline.
pub fn obs_sweep_jobs(jobs: usize) -> Vec<ObsSweepPoint> {
    crate::par::ordered_map(jobs, SWEEP_LOADS, |_, &load| {
        obs_point_seeded(SWEEP_SEED, load)
    })
}

/// The focus-load observed run (dashboard + `--obs` export source).
pub fn obs_focus_run() -> (TenancyReport, ObsReport, bool) {
    obs_run_seeded(SWEEP_SEED, OBS_FOCUS_LOAD)
}

/// Renders the per-tenant timeline dashboard for one observed run:
/// per-tenant outcome counts with a sparkline of each tenant's
/// per-wave SLO-violation series, the alert timeline, and a post-mortem
/// bundle summary. Pure formatting — byte-identical for identical
/// reports.
pub fn render_dashboard(report: &ObsReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<12} {:>7} {:>7} {:>7}  {}\n",
        "Tenant", "Class", "Total", "Bad", "Shed", "slo_bad/wave (recent)"
    ));
    let tenants = sweep_tenants(OBS_FOCUS_LOAD);
    for tenant in &tenants {
        let labels = [
            ("slo_class", tenant.class.name()),
            ("tenant", tenant.name.as_str()),
        ];
        // The downsampling ring conserves mass across compaction, so the
        // bucket sums alone cover every sample ever pushed.
        let sum = |name: &str| {
            report
                .series_buffer(&SeriesKey::new(name, &labels))
                .map(|b| b.buckets().iter().map(|bk| bk.sum).sum::<f64>())
                .unwrap_or(0.0)
        };
        let spark = report
            .series_buffer(&SeriesKey::new("slo_bad", &labels))
            .map(|b| {
                let values: Vec<f64> = b.recent().map(|s| s.value).collect();
                sparkline(&values)
            })
            .unwrap_or_default();
        out.push_str(&format!(
            "{:<14} {:<12} {:>7.0} {:>7.0} {:>7.0}  {}\n",
            tenant.name,
            tenant.class.name(),
            sum("slo_total"),
            sum("slo_bad"),
            sum("requests_shed"),
            spark,
        ));
    }
    out.push_str("\nalert timeline:\n");
    if report.alerts.is_empty() {
        out.push_str("  (no transitions)\n");
    }
    for a in &report.alerts {
        out.push_str(&format!(
            "  wave {:>5}  {:<10} {:<24} burn/value {:>8.2} vs {:<6.2} {}\n",
            a.wave,
            a.kind.name(),
            a.rule,
            a.value,
            a.threshold,
            a.labels.render(),
        ));
    }
    out.push_str("\npost-mortem bundles:\n");
    if report.postmortems.is_empty() {
        out.push_str("  (none captured)\n");
    }
    for pm in &report.postmortems {
        out.push_str(&format!(
            "  {:<28} waves {:>5}..{:<5} {:>4} entries, {:>2} series\n",
            pm.trigger,
            pm.opened_wave,
            pm.closed_wave,
            pm.entries.len(),
            pm.series.len(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenants::{OUTAGE_START, SWEEP_LOADS};

    #[test]
    fn points_are_deterministic() {
        let a = obs_point_seeded(SWEEP_SEED, 1.0);
        let b = obs_point_seeded(SWEEP_SEED, 1.0);
        assert_eq!(a, b, "same load, same row");
    }

    #[test]
    fn observing_never_changes_the_serving_run() {
        for &load in SWEEP_LOADS {
            let p = obs_point_seeded(SWEEP_SEED, load);
            assert!(
                p.identical,
                "load {load}: observed run diverged from the blind run"
            );
        }
    }

    #[test]
    fn focus_run_fires_and_resolves_a_burn_rate_alert() {
        let (_, report, identical) = obs_focus_run();
        assert!(identical);
        let fired: Vec<_> = report
            .alerts_of(AlertKind::Firing)
            .filter(|a| a.rule.starts_with("slo_burn:"))
            .collect();
        assert!(
            !fired.is_empty(),
            "outage at 4x load must burn someone's budget; alerts: {:?}",
            report.alerts
        );
        let resolved = report
            .alerts_of(AlertKind::Resolved)
            .any(|a| a.rule.starts_with("slo_burn:"));
        assert!(resolved, "recovery must resolve a burn-rate alert");
    }

    #[test]
    fn postmortem_covers_the_alerting_tenant_through_the_incident() {
        let (_, report, _) = obs_focus_run();
        let fired = report
            .alerts_of(AlertKind::Firing)
            .find(|a| a.rule.starts_with("slo_burn:"))
            .expect("a burn-rate alert fires")
            .clone();
        let pm = report
            .postmortems
            .iter()
            .find(|pm| pm.opened_wave <= fired.wave && fired.wave <= pm.closed_wave)
            .expect("a bundle spans the firing wave");
        let tenant = fired.labels.get("tenant").expect("rule labels its tenant");
        let (_, samples) = pm
            .series
            .iter()
            .find(|(k, _)| k.name == "slo_bad" && k.labels.get("tenant") == Some(tenant))
            .expect("bundle carries the alerting tenant's slo_bad series");
        let first = samples.first().expect("series non-empty").wave;
        let last = samples.last().expect("series non-empty").wave;
        assert!(
            first <= fired.wave && fired.wave <= last,
            "series {first}..{last} must cover firing wave {}",
            fired.wave
        );
    }

    #[test]
    fn outage_leaves_a_flight_recorder_trail() {
        let (_, report, _) = obs_focus_run();
        let pm = report
            .postmortems
            .first()
            .expect("chaos opens at least one capture");
        assert!(
            pm.entries.iter().any(|e| e.kind == "node_crash"),
            "the crash itself must be on the tape"
        );
        assert!(
            pm.opened_at >= OUTAGE_START || pm.opened_wave == 0,
            "captures open at or after the outage starts"
        );
    }

    #[test]
    fn dashboard_renders_all_tenants_and_alerts() {
        let (_, report, _) = obs_focus_run();
        let dash = render_dashboard(&report);
        for tenant in sweep_tenants(OBS_FOCUS_LOAD) {
            assert!(
                dash.contains(&tenant.name),
                "missing tenant {}",
                tenant.name
            );
        }
        assert!(dash.contains("firing"), "dashboard: {dash}");
        assert!(dash.contains("resolved"), "dashboard: {dash}");
        assert!(!dash.contains("NaN"));
    }

    #[test]
    fn export_schema_validates_with_the_vendored_parser() {
        let (_, report, _) = obs_focus_run();
        let json = report.to_json();
        let doc = sn_trace::json::parse(&json).expect("export parses");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("sn-obs/v1")
        );
        let series = doc
            .get("series")
            .and_then(|v| v.as_array())
            .expect("series array");
        assert_eq!(series.len(), report.series.len());
        let alerts = doc
            .get("alerts")
            .and_then(|v| v.as_array())
            .expect("alerts array");
        assert_eq!(alerts.len(), report.alerts.len());
        let pms = doc
            .get("postmortems")
            .and_then(|v| v.as_array())
            .expect("postmortems array");
        assert_eq!(pms.len(), report.postmortems.len());
    }

    #[test]
    fn sweep_is_jobs_invariant() {
        assert_eq!(obs_sweep_jobs(1), obs_sweep_jobs(3));
    }
}
