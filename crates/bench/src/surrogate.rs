//! Calibrated surrogate sweep (`repro -- surrogate`): a huge predicted
//! grid with exact-sim drift gating.
//!
//! The exact tenants sweep affords four load multipliers per run; the
//! paper's capacity arguments want the whole surface — load × cluster
//! size × chaos × tenant mix. This module wires `sn-surrogate` through
//! the bench harness to get there in three seeded, deterministic steps:
//!
//! 1. **Calibrate** — run a small *anchor* set exactly (eight
//!    tenants-family grid points spanning the corners, plus the two
//!    placement chaos-2x acceptance points), then fit the surrogate's
//!    per-metric residual corrections against them;
//! 2. **Predict** — evaluate the calibrated model over the full
//!    [`grid`] (480 points — 120x the exact sweep's four), fanned
//!    through the ordered-merge jobs engine so the prediction table is
//!    byte-identical at any `--jobs`;
//! 3. **Spot-check** — re-run a seeded random subset of *non-anchor*
//!    grid points exactly and gate each metric's worst relative error
//!    against the committed [`ERROR_BUDGETS`]. The errors ride in the
//!    bench snapshot, so surrogate drift fails `bench_check.sh` and CI
//!    exactly like tracked-metric drift.
//!
//! Every step is a pure function of committed constants: same anchors,
//! same coefficients, same predictions, same verdict, every run.

use crate::tenants;
use sn_arch::{NodeSpec, TimeSecs};
use sn_coe::scheduler::ArrivalPattern;
use sn_coe::{CoeCluster, ExpertLibrary, SloClass, TenancyReport, TenantSpec};
use sn_surrogate::{
    extract, predict_base, relative_error, Anchor, Calibration, ChaosSummary, MetricVector,
    SweepSpec, WaveSummary, METRIC_NAMES, NUM_METRICS,
};

/// Seed for the spot-check subset draw (independent of scenario seeds).
pub const SPOT_SEED: u64 = 0x5a11;

/// Exact spot checks re-run per suite.
pub const SPOT_CHECKS: usize = 5;

/// Load multipliers of the predicted grid: 0.25 .. 6.0 in quarter
/// steps — 24 values against the exact sweep's 4.
pub const GRID_LOAD_STEPS: usize = 24;

/// Cluster sizes of the predicted grid (the autoscaler's legal range).
pub const GRID_NODES: &[usize] = &[2, 3, 4, 5, 6];

/// Per-metric relative-error budgets the spot checks gate against,
/// index-aligned with [`METRIC_NAMES`]. Committed numbers: a code
/// change that degrades the surrogate past any budget fails
/// `repro surrogate`, the snapshot gate, `bench_check.sh`, and CI.
/// Set from the measured worst case with ~1.5x headroom.
pub const ERROR_BUDGETS: [f64; NUM_METRICS] = [
    0.75, // interactive_p99_ms (measured worst 0.506)
    0.45, // batch_p99_ms (measured worst 0.287)
    0.85, // interactive_goodput_rps (measured worst 0.579)
    0.25, // batch_goodput_rps (measured worst 0.146)
    0.06, // hbm_hit_rate (measured worst 0.035)
    0.45, // switch_bound_fraction (measured worst 0.299)
    0.30, // makespan_ms (measured worst 0.200)
];

/// One cell of the predicted grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridCase {
    /// Nodes the cluster starts with.
    pub nodes: usize,
    /// Offered-load multiplier.
    pub load: f64,
    /// Whether the tenants chaos schedule applies.
    pub chaos: bool,
    /// Whether the batch tenants' request counts are doubled.
    pub batch_heavy: bool,
}

/// The full predicted grid in fixed order: nodes, then chaos, then mix,
/// then load (innermost). 480 cells.
pub fn grid() -> Vec<GridCase> {
    let mut cells = Vec::new();
    for &nodes in GRID_NODES {
        for chaos in [false, true] {
            for batch_heavy in [false, true] {
                for step in 1..=GRID_LOAD_STEPS {
                    cells.push(GridCase {
                        nodes,
                        load: step as f64 * 0.25,
                        chaos,
                        batch_heavy,
                    });
                }
            }
        }
    }
    cells
}

/// The tenants-sweep mix at a load multiplier, with the batch tenants'
/// request counts doubled on `batch_heavy` rows.
pub fn grid_tenants(load: f64, batch_heavy: bool) -> Vec<TenantSpec> {
    let mut specs = tenants::sweep_tenants(load);
    if batch_heavy {
        for t in specs.iter_mut() {
            if t.class == SloClass::Batch {
                t.requests *= 2;
            }
        }
    }
    specs
}

/// Estimated span of an arrival mix: the latest tenant's offered window
/// (a pure backlog contributes zero). A model input, not a measurement.
fn arrival_span(specs: &[TenantSpec]) -> TimeSecs {
    let mut span = 0.0f64;
    for t in specs {
        let s = match &t.pattern {
            ArrivalPattern::Burst => 0.0,
            ArrivalPattern::Poisson { rate_rps } => {
                if *rate_rps > 0.0 {
                    t.requests as f64 / rate_rps
                } else {
                    0.0
                }
            }
            ArrivalPattern::BurstTrain { size, period } => {
                (t.requests as f64 / (*size).max(1) as f64).ceil() * period.as_secs()
            }
        };
        span = span.max(s);
    }
    TimeSecs::from_secs(span)
}

/// Request totals per SLO class across a tenant mix.
fn class_totals(specs: &[TenantSpec]) -> (usize, usize) {
    let mut interactive = 0;
    let mut batch = 0;
    for t in specs {
        match t.class {
            SloClass::Interactive => interactive += t.requests,
            SloClass::Batch => batch += t.requests,
        }
    }
    (interactive, batch)
}

/// The surrogate configuration of one grid cell — everything the
/// analytical model sees, derived from the same committed constants the
/// exact run uses. The chaos summary clips the outage to the cluster:
/// [`tenants::OUTAGE_NODES`] aimed past a small cluster kill nothing,
/// matching `ChaosSchedule`'s skip rule.
pub fn case_spec(case: &GridCase) -> SweepSpec {
    let config = tenants::sweep_config();
    let specs = grid_tenants(case.load, case.batch_heavy);
    let (interactive_requests, batch_requests) = class_totals(&specs);
    SweepSpec {
        nodes: case.nodes,
        per_node_slots: config.per_node_slots,
        experts: tenants::SWEEP_EXPERTS,
        prompt_tokens: config.prompt_tokens,
        wave_tokens: config.wave_tokens,
        interactive_requests,
        batch_requests,
        interactive_chunks: config.interactive.chunks,
        batch_chunks: config.batch.chunks,
        interactive_queue_cap: config.interactive.queue_cap,
        batch_queue_cap: config.batch.queue_cap,
        interactive_deadline: config.interactive.deadline,
        interactive_slo: config.interactive.slo_bound,
        batch_deadline: config.batch.deadline,
        batch_slo: config.batch.slo_bound,
        arrival_span: arrival_span(&specs),
        load: case.load,
        policies: false,
        chaos: case.chaos.then(|| ChaosSummary {
            outage_nodes: tenants::OUTAGE_NODES
                .iter()
                .filter(|&&n| n < case.nodes)
                .count(),
            outage_start: tenants::OUTAGE_START,
            outage_end: tenants::OUTAGE_END,
            fabric_end: tenants::FABRIC_WINDOW_END,
            // The fabric spec of `tenants::sweep_chaos`.
            fail_rate: 0.10,
            slow_rate: 0.25,
            slow_factor: 1.5,
        }),
    }
}

/// Runs one grid cell exactly: the tenants-sweep scenario generalized
/// over cluster size, chaos toggle, and mix. The `nodes = 4`, chaos-on,
/// standard-mix cells reproduce `tenants_report_seeded` bit for bit.
///
/// # Panics
///
/// Panics if the expert library cannot be placed on the starting
/// cluster (a configuration bug, not a runtime condition).
pub fn exact_report(case: &GridCase) -> TenancyReport {
    let mut cluster = CoeCluster::new(
        NodeSpec::sn40l_node(),
        case.nodes,
        ExpertLibrary::new(tenants::SWEEP_EXPERTS),
        tenants::SWEEP_PROMPT_TOKENS,
    )
    .expect("grid library fits the starting cluster");
    let config = tenants::sweep_config();
    let chaos = case
        .chaos
        .then(|| tenants::sweep_chaos(tenants::SWEEP_SEED));
    let mut controller = tenants::sweep_controller();
    cluster
        .serve_tenants(
            &grid_tenants(case.load, case.batch_heavy),
            &config,
            chaos.as_ref(),
            Some(&mut controller),
        )
        .expect("grid point serves")
}

/// Folds an exact report into the surrogate's metric vector, using the
/// scenario's expert-library size for the switch-bound classification.
pub fn exact_metrics(report: &TenancyReport, experts: usize) -> MetricVector {
    MetricVector {
        values: [
            report
                .latency_percentile(SloClass::Interactive, 0.99)
                .as_millis(),
            report.latency_percentile(SloClass::Batch, 0.99).as_millis(),
            report.goodput_rps(SloClass::Interactive),
            report.goodput_rps(SloClass::Batch),
            report.expert_hit_rate(),
            crate::placement::switch_bound_fraction_for(report, experts),
            report.makespan.as_millis(),
        ],
    }
}

/// One anchor task: a tenants-family grid cell or a placement
/// acceptance point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnchorCase {
    /// A cell of the tenants-family grid.
    Grid(GridCase),
    /// One of the placement chaos-2x acceptance points.
    Placement(crate::placement::PlacementCase),
}

/// The committed anchor set: the four exact-sweep loads on the standard
/// cell, four corner cells spanning nodes × chaos × mix, and the two
/// placement chaos-2x points (a different scenario family — 72 slots,
/// CoE-150 — so the fit sees more than one operating regime).
pub fn anchor_cases() -> Vec<AnchorCase> {
    let mut cases: Vec<AnchorCase> = tenants::SWEEP_LOADS
        .iter()
        .map(|&load| {
            AnchorCase::Grid(GridCase {
                nodes: tenants::SWEEP_NODES,
                load,
                chaos: true,
                batch_heavy: false,
            })
        })
        .collect();
    for (nodes, load, chaos, batch_heavy) in [
        (2, 1.0, false, false),
        (6, 2.0, true, false),
        (3, 1.0, true, true),
        (5, 4.0, false, true),
        // Load extremes, chaos on and off: the fit extrapolates badly
        // outside the anchored range, so pin the corners of the grid.
        (4, 0.25, true, false),
        (4, 6.0, true, true),
        (2, 0.25, false, false),
        (6, 6.0, false, true),
    ] {
        cases.push(AnchorCase::Grid(GridCase {
            nodes,
            load,
            chaos,
            batch_heavy,
        }));
    }
    for policies in [false, true] {
        cases.push(AnchorCase::Placement(crate::placement::PlacementCase {
            policies,
            chaos: true,
            load: 2.0,
        }));
    }
    cases
}

/// The surrogate configuration of a placement acceptance point, from
/// the placement sweep's committed constants.
pub fn placement_spec(case: &crate::placement::PlacementCase) -> SweepSpec {
    let config = crate::placement::sweep_config();
    let specs = crate::placement::sweep_tenants(case.load);
    let (interactive_requests, batch_requests) = class_totals(&specs);
    SweepSpec {
        nodes: crate::placement::SWEEP_NODES,
        per_node_slots: config.per_node_slots,
        experts: crate::placement::SWEEP_EXPERTS,
        prompt_tokens: config.prompt_tokens,
        wave_tokens: config.wave_tokens,
        interactive_requests,
        batch_requests,
        interactive_chunks: config.interactive.chunks,
        batch_chunks: config.batch.chunks,
        interactive_queue_cap: config.interactive.queue_cap,
        batch_queue_cap: config.batch.queue_cap,
        interactive_deadline: config.interactive.deadline,
        interactive_slo: config.interactive.slo_bound,
        batch_deadline: config.batch.deadline,
        batch_slo: config.batch.slo_bound,
        arrival_span: arrival_span(&specs),
        load: case.load,
        policies: case.policies,
        chaos: case.chaos.then_some(ChaosSummary {
            outage_nodes: 1,
            outage_start: crate::placement::OUTAGE_START,
            outage_end: crate::placement::OUTAGE_END,
            fabric_end: crate::placement::FABRIC_WINDOW_END,
            // The fabric spec of `placement::sweep_chaos`.
            fail_rate: 0.10,
            slow_rate: 0.25,
            slow_factor: 1.5,
        }),
    }
}

/// One calibrated anchor with its exact run's wave roll-up (the
/// per-wave phase/occupancy view `repro surrogate` prints).
#[derive(Debug, Clone, PartialEq)]
pub struct AnchorReport {
    /// Stable display label.
    pub label: String,
    /// The fitted anchor (spec, features, base, exact).
    pub anchor: Anchor,
    /// Wave-feature roll-up of the exact run.
    pub waves: WaveSummary,
}

/// Runs one anchor exactly and pairs it with its base prediction.
fn run_anchor(case: &AnchorCase) -> AnchorReport {
    let node = NodeSpec::sn40l_node();
    let (label, spec, report, experts) = match case {
        AnchorCase::Grid(g) => {
            let label = format!(
                "grid n{} x{:.2}{}{}",
                g.nodes,
                g.load,
                if g.chaos { " chaos" } else { "" },
                if g.batch_heavy { " batch+" } else { "" },
            );
            (label, case_spec(g), exact_report(g), tenants::SWEEP_EXPERTS)
        }
        AnchorCase::Placement(p) => {
            let label = format!(
                "placement x{:.2} {}",
                p.load,
                if p.policies { "managed" } else { "reactive" }
            );
            (
                label,
                placement_spec(p),
                crate::placement::placement_report_seeded(crate::placement::SWEEP_SEED, *p),
                crate::placement::SWEEP_EXPERTS,
            )
        }
    };
    let features = extract(&spec, &node);
    let base = predict_base(&spec, &node);
    let exact = exact_metrics(&report, experts);
    AnchorReport {
        label,
        anchor: Anchor {
            spec,
            features,
            base,
            exact,
        },
        waves: WaveSummary::from_report(&report),
    }
}

/// One exact spot check of a predicted grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotCheck {
    /// The grid cell re-run exactly.
    pub case: GridCase,
    /// Calibrated surrogate prediction.
    pub predicted: MetricVector,
    /// Exact simulator metrics.
    pub exact: MetricVector,
    /// Per-metric relative errors, index-aligned with [`METRIC_NAMES`].
    pub errors: [f64; NUM_METRICS],
}

/// `splitmix64` step (same generator family as the property harness).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seeded spot-check subset: [`SPOT_CHECKS`] distinct grid cells
/// drawn by `splitmix64` from [`SPOT_SEED`], skipping anchor cells (a
/// spot check of a point the fit already saw proves nothing).
pub fn spot_cases() -> Vec<GridCase> {
    let cells = grid();
    let anchors = anchor_cases();
    let is_anchor = |case: &GridCase| {
        anchors
            .iter()
            .any(|a| matches!(a, AnchorCase::Grid(g) if g == case))
    };
    let mut state = SPOT_SEED;
    let mut seen = std::collections::BTreeSet::new();
    let mut picks = Vec::new();
    while picks.len() < SPOT_CHECKS {
        let idx = (splitmix(&mut state) % cells.len() as u64) as usize;
        if !seen.insert(idx) || is_anchor(&cells[idx]) {
            continue;
        }
        picks.push(cells[idx]);
    }
    picks
}

/// The full surrogate suite: anchors, fit, grid predictions, and gated
/// spot checks.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateSuite {
    /// Exact anchors the fit consumed, in committed order.
    pub anchors: Vec<AnchorReport>,
    /// The fitted calibration.
    pub calibration: Calibration,
    /// Calibrated predictions over the full [`grid`], in grid order.
    pub predictions: Vec<(GridCase, MetricVector)>,
    /// Exact spot checks of seeded non-anchor cells.
    pub spots: Vec<SpotCheck>,
    /// Worst spot-check relative error per metric.
    pub max_errors: [f64; NUM_METRICS],
    /// Whether every metric's worst error fits its committed budget.
    pub gate: bool,
}

/// Predicts the full grid with a calibration, fanned across `jobs`
/// worker threads via the ordered-merge engine — byte-identical output
/// for every `jobs` value.
pub fn predict_grid_jobs(calibration: &Calibration, jobs: usize) -> Vec<(GridCase, MetricVector)> {
    let node = NodeSpec::sn40l_node();
    let cells = grid();
    crate::par::ordered_map(jobs, &cells, |_, case| {
        let spec = case_spec(case);
        let predicted = calibration.apply(&extract(&spec, &node), &predict_base(&spec, &node));
        (*case, predicted)
    })
}

/// Runs the whole suite: exact anchors (fanned), deterministic fit,
/// grid prediction (fanned), exact spot checks (fanned), budget gate.
/// Byte-identical at any `jobs` value.
pub fn surrogate_suite(jobs: usize) -> SurrogateSuite {
    let node = NodeSpec::sn40l_node();
    let cases = anchor_cases();
    let anchors = crate::par::ordered_map(jobs, &cases, |_, case| run_anchor(case));
    let fit_input: Vec<Anchor> = anchors.iter().map(|a| a.anchor).collect();
    let calibration = Calibration::fit(&fit_input);

    let predictions = predict_grid_jobs(&calibration, jobs);

    let spot_targets = spot_cases();
    let spots: Vec<SpotCheck> = crate::par::ordered_map(jobs, &spot_targets, |_, case| {
        let spec = case_spec(case);
        let predicted = calibration.apply(&extract(&spec, &node), &predict_base(&spec, &node));
        let exact = exact_metrics(&exact_report(case), tenants::SWEEP_EXPERTS);
        let mut errors = [0.0; NUM_METRICS];
        for m in 0..NUM_METRICS {
            errors[m] = relative_error(METRIC_NAMES[m], predicted.values[m], exact.values[m]);
        }
        SpotCheck {
            case: *case,
            predicted,
            exact,
            errors,
        }
    });

    let mut max_errors = [0.0f64; NUM_METRICS];
    for s in &spots {
        for (worst, &err) in max_errors.iter_mut().zip(s.errors.iter()) {
            *worst = worst.max(err);
        }
    }
    let gate = max_errors
        .iter()
        .zip(ERROR_BUDGETS.iter())
        .all(|(err, budget)| err <= budget);
    SurrogateSuite {
        anchors,
        calibration,
        predictions,
        spots,
        max_errors,
        gate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_at_least_100x_the_exact_sweep() {
        let cells = grid();
        assert!(
            cells.len() >= 100 * tenants::SWEEP_LOADS.len(),
            "{} cells vs {} exact points",
            cells.len(),
            tenants::SWEEP_LOADS.len()
        );
        // Fixed order, no duplicates.
        for (i, a) in cells.iter().enumerate() {
            assert!(!cells[i + 1..].contains(a), "duplicate cell {a:?}");
        }
    }

    #[test]
    fn spot_cases_are_seeded_distinct_non_anchors() {
        let a = spot_cases();
        let b = spot_cases();
        assert_eq!(a, b, "spot draw is seeded");
        assert_eq!(a.len(), SPOT_CHECKS);
        let anchors = anchor_cases();
        for case in &a {
            assert!(
                !anchors
                    .iter()
                    .any(|x| matches!(x, AnchorCase::Grid(g) if g == case)),
                "spot {case:?} is an anchor"
            );
        }
    }

    #[test]
    fn standard_cells_match_the_exact_sweep_scenario() {
        // The nodes=4 chaos-on standard cell is the tenants sweep point.
        let case = GridCase {
            nodes: tenants::SWEEP_NODES,
            load: 1.0,
            chaos: true,
            batch_heavy: false,
        };
        let a = exact_report(&case);
        let b = tenants::tenants_report_seeded(tenants::SWEEP_SEED, 1.0);
        assert_eq!(a, b, "grid cell must reproduce the sweep bit for bit");
    }

    #[test]
    fn case_specs_reflect_their_cell() {
        let std = case_spec(&GridCase {
            nodes: 4,
            load: 1.0,
            chaos: true,
            batch_heavy: false,
        });
        assert_eq!(
            std.interactive_requests,
            2 * tenants::BASE_INTERACTIVE_REQUESTS
        );
        assert_eq!(std.batch_requests, 2 * tenants::BASE_BATCH_REQUESTS);
        assert_eq!(std.chaos.unwrap().outage_nodes, 2);

        let heavy = case_spec(&GridCase {
            nodes: 2,
            load: 1.0,
            chaos: true,
            batch_heavy: true,
        });
        assert_eq!(heavy.batch_requests, 4 * tenants::BASE_BATCH_REQUESTS);
        // Outage aimed at nodes 2 and 3 misses a 2-node cluster.
        assert_eq!(heavy.chaos.unwrap().outage_nodes, 0);
    }
}
