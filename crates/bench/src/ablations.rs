//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each function returns a small comparison struct so the `repro` binary
//! and the Criterion benches can report them uniformly.

use sn_arch::{Bytes, Calibration, NodeSpec, Orchestration, SocketSpec, TimeSecs};
use sn_compiler::{memplan, Compiler, FusionPolicy, SpillPolicy};
use sn_models::{build, Phase, TransformerConfig};
use sn_rdusim::pmu::{BankMapping, PmuModel, ReorderBuffer};
use sn_rdusim::rdn::{Coord, Flow, FlowIdMode, NetConfig, NetSim};
use sn_runtime::coe::{CoeRuntime, CoeRuntimeConfig, EvictionPolicy, ModelBinary};
use sn_runtime::executor::NodeExecutor;

/// A generic before/after comparison.
#[derive(Debug, Clone)]
pub struct Ablation {
    pub name: &'static str,
    /// The SN40L / paper design point.
    pub with_feature: f64,
    /// The baseline without the feature.
    pub without_feature: f64,
    /// What the numbers are (unit label).
    pub unit: &'static str,
    /// Whether larger metric values are better (throughput) rather than
    /// worse (time, stalls, traffic).
    pub higher_is_better: bool,
}

impl Ablation {
    /// Improvement factor of the feature (always >= 1 when the feature
    /// helps).
    pub fn factor(&self) -> f64 {
        if self.higher_is_better {
            self.with_feature / self.without_feature
        } else {
            self.without_feature / self.with_feature
        }
    }
}

/// Flow-ID allocation: SN10 global pool vs SN40L MPLS relabeling (§IV-E).
/// Metric: cycles to drain six crossing flows on an 8x8 mesh.
pub fn flow_ids() -> Ablation {
    let flows: Vec<Flow> = (0..6)
        .map(|i| Flow::unicast(Coord::new(0, i), Coord::new(7, 5 - i), 40))
        .collect();
    let run = |mode| {
        NetSim::new(NetConfig {
            flow_mode: mode,
            ..NetConfig::default()
        })
        .run(&flows)
        .cycles as f64
    };
    Ablation {
        name: "flow-id allocation (MPLS vs global pool)",
        with_feature: run(FlowIdMode::Mpls),
        without_feature: run(FlowIdMode::GlobalPool { pool_size: 3 }),
        unit: "cycles",
        higher_is_better: false,
    }
}

/// Programmable bank bits vs fixed banking on a power-of-two double-buffer
/// stride (§VII). Metric: cycles per 16-lane vector access.
pub fn bank_bits() -> Ablation {
    let spec = sn_arch::PmuSpec::sn40l();
    let word = spec.vector_width.as_u64() / spec.banks as u64;
    let stride = word * spec.banks as u64 * 4;
    let addrs: Vec<u64> = (0..16).map(|i| i * stride).collect();
    let fixed = PmuModel::new(spec, BankMapping::Fixed);
    let tuned = PmuModel::new(
        spec,
        BankMapping::Programmable {
            shift: stride.trailing_zeros(),
        },
    );
    Ablation {
        name: "programmable bank bits (double-buffer stride)",
        with_feature: tuned.access_cycles(&addrs).as_u64() as f64,
        without_feature: fixed.access_cycles(&addrs).as_u64() as f64,
        unit: "cycles/access",
        higher_is_better: false,
    }
}

/// Packet throttling vs unmanaged bursts (§VII). Metric: total stall
/// cycles while a bursty flow shares links with a victim flow.
pub fn throttling() -> Ablation {
    let flows = vec![
        Flow {
            src: Coord::new(0, 2),
            dsts: vec![Coord::new(7, 2)],
            packets: 60,
            injection_interval: 2,
            burst: 12,
        },
        Flow {
            src: Coord::new(1, 2),
            dsts: vec![Coord::new(7, 2)],
            packets: 60,
            injection_interval: 2,
            burst: 1,
        },
    ];
    let run = |throttle| {
        NetSim::new(NetConfig {
            throttle,
            ..NetConfig::default()
        })
        .run(&flows)
        .stall_cycles as f64
    };
    Ablation {
        name: "packet throttling under bursty traffic",
        with_feature: run(Some(2)),
        without_feature: run(None),
        unit: "stall cycles",
        higher_is_better: false,
    }
}

/// Fused (pipelined) P2P collectives vs standalone AllReduce kernels
/// (§VII). Metric: exposed collective seconds for one llama2-7B decode
/// step at TP8.
pub fn p2p_overlap() -> Ablation {
    let cfg = TransformerConfig::llama2_7b();
    let g = build(&cfg, Phase::Decode { past_tokens: 4096 }, 1, 8).expect("decode builds");
    let compiler = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
    let exposed = |policy| {
        let exe = compiler.compile(&g, policy).expect("compiles");
        exe.estimates()
            .iter()
            .map(|e| e.collective)
            .sum::<TimeSecs>()
            .as_micros()
    };
    Ablation {
        name: "pipelined P2P collectives",
        with_feature: exposed(FusionPolicy::Spatial),
        without_feature: exposed(FusionPolicy::Unfused),
        unit: "exposed collective microseconds",
        higher_is_better: false,
    }
}

/// Bandwidth-sorted DDR spill vs naive declaration-order spilling (§V-A).
/// Metric: DDR traffic implied by the spill set under a constrained HBM,
/// counting the serving-loop reuse of every spilled weight.
///
/// The scenario isolates the policy: a 16-layer chain whose weights and
/// activations are the same size (32 MiB), with HBM sized so that exactly
/// the activations' share must spill. The §V-A policy sheds the cold
/// single-use activations; the naive policy sheds hot weights that the
/// decode loop re-reads every launch.
pub fn spill_policy() -> Ablation {
    use sn_dataflow::{DType, GraphBuilder, OpKind, Shape, TensorKind, UnaryKind};
    let mut b = GraphBuilder::new("spill-ablation");
    let mut cur = b.tensor("x", Shape::mat(8192, 8192), DType::Bf16, TensorKind::Input);
    for l in 0..4u32 {
        b.set_region(l);
        let w = b.tensor(
            format!("w{l}"),
            Shape::mat(8192, 8192),
            DType::Bf16,
            TensorKind::Weight,
        );
        cur = b
            .node("proj", OpKind::Gemm { transpose_b: false }, &[cur, w])
            .expect("builds");
        cur = b
            .node("act", OpKind::Unary(UnaryKind::Gelu), &[cur])
            .expect("builds");
    }
    b.mark_output(cur);
    let g = b.build().expect("non-empty");
    let mut socket = SocketSpec::sn40l();
    // Weights total 512 MiB; two 128 MiB activations are live at each
    // kernel. 640 MiB forces exactly one activation's worth of spill per
    // peak; spilling a cheap cold activation costs 2x its bytes in DDR
    // traffic, spilling a hot weight costs 32x (2 crossings x 16-launch
    // reuse).
    socket.hbm.capacity = Bytes::from_mib(640);
    let compiler = Compiler::new(socket.clone(), Calibration::baseline());
    let exe = compiler
        .compile(&g, FusionPolicy::Unfused)
        .expect("compiles");
    let traffic = |policy| {
        memplan::plan_with_policy(&g, exe.kernels(), &socket, policy)
            .spill_traffic()
            .as_gb()
    };
    Ablation {
        name: "bandwidth-sorted DDR spill",
        with_feature: traffic(SpillPolicy::BandwidthSorted),
        without_feature: traffic(SpillPolicy::DeclarationOrder),
        unit: "GB of DDR traffic",
        higher_is_better: false,
    }
}

/// LRU vs FIFO expert eviction under a looping request trace (§V-B).
/// Metric: total switch seconds over the trace.
pub fn expert_cache() -> Ablation {
    let trace: Vec<usize> = {
        // A hot set of 30 experts with occasional excursions: LRU keeps
        // the hot set; FIFO churns it.
        let mut t = Vec::new();
        for round in 0..20 {
            for hot in 0..30 {
                t.push(hot);
            }
            t.push(40 + round); // cold excursion
        }
        t
    };
    let run = |eviction| {
        let mut rt = CoeRuntime::new(
            &NodeSpec::sn40l_node(),
            CoeRuntimeConfig {
                eviction,
                ..Default::default()
            },
        );
        for i in 0..64 {
            rt.register(ModelBinary::weights_only(
                format!("e{i}"),
                Bytes::from_gb(13.48),
            ))
            .expect("64 experts fit DDR");
        }
        let mut total = TimeSecs::ZERO;
        for &e in &trace {
            total += rt
                .activate(&format!("e{e}"))
                .expect("registered")
                .switch_time;
        }
        total.as_secs()
    };
    Ablation {
        name: "LRU expert cache (vs FIFO)",
        with_feature: run(EvictionPolicy::Lru),
        without_feature: run(EvictionPolicy::Fifo),
        unit: "switch seconds over trace",
        higher_is_better: false,
    }
}

/// Read-only copy-back elision on eviction (§V-B). Metric: total switch
/// seconds over a cache-thrashing trace.
pub fn readonly_elision() -> Ablation {
    let run = |skip| {
        let mut rt = CoeRuntime::new(
            &NodeSpec::sn40l_node(),
            CoeRuntimeConfig {
                skip_readonly_copyback: skip,
                ..Default::default()
            },
        );
        for i in 0..50 {
            rt.register(ModelBinary::weights_only(
                format!("e{i}"),
                Bytes::from_gb(13.48),
            ))
            .expect("50 experts fit DDR");
        }
        let mut total = TimeSecs::ZERO;
        for round in 0..3 {
            for i in 0..50 {
                let _ = round;
                total += rt
                    .activate(&format!("e{i}"))
                    .expect("registered")
                    .switch_time;
            }
        }
        total.as_secs()
    };
    Ablation {
        name: "read-only copy-back elision",
        with_feature: run(true),
        without_feature: run(false),
        unit: "switch seconds over trace",
        higher_is_better: false,
    }
}

/// Voltage-droop mitigation: SN40L hardware management vs SN10's
/// conservative software scheme costing up to 25% (§IV-E). Metric: peak
/// BF16 TFLOPS per socket, normalized per PCU-GHz so only the droop policy
/// differs.
pub fn power_management() -> Ablation {
    let sn40l = sn_arch::RduChipSpec::sn40l();
    let mut sn40l_with_sn10_droop = sn40l.clone();
    sn40l_with_sn10_droop.droop_penalty = sn_arch::RduChipSpec::sn10().droop_penalty;
    Ablation {
        name: "hardware droop management",
        with_feature: sn40l.peak_bf16().as_tflops(),
        without_feature: sn40l_with_sn10_droop.peak_bf16().as_tflops(),
        unit: "peak TFLOPS",
        higher_is_better: true,
    }
}

/// HBM tier existence: the SN40L's decode executes from HBM; the SN10
/// ablation streams weights from DDR (§IV-E "the addition of the HBM
/// memory tier is critical"). Metric: llama2-7B decode step seconds.
pub fn hbm_tier() -> Ablation {
    let calib = Calibration::baseline();
    let cfg = TransformerConfig::llama2_7b();
    let step = |socket: SocketSpec, tp: usize| {
        let g = build(&cfg, Phase::Decode { past_tokens: 4096 }, 1, tp).expect("decode builds");
        let compiler = Compiler::new(socket, calib.clone());
        let exe = compiler
            .compile(&g, FusionPolicy::Spatial)
            .expect("compiles");
        let node = NodeExecutor::new(NodeSpec::sn40l_node(), calib.clone());
        node.run(&exe, Orchestration::Hardware).total.as_secs()
    };
    Ablation {
        name: "HBM tier for decode",
        with_feature: step(SocketSpec::sn40l(), 8),
        without_feature: step(SocketSpec::sn10(), 8),
        unit: "seconds per decode step",
        higher_is_better: false,
    }
}

/// Expert prefetching: overlap the next prompt's DDR→HBM copy with the
/// current prompt's execution (enabled by the dual off-chip tiers).
/// Metric: batch latency for 8 cold prompts, 20 tokens each.
pub fn expert_prefetch() -> Ablation {
    use sn_coe::{ExpertLibrary, PromptGenerator, SambaCoeNode};
    let batch = PromptGenerator::new(11, 1024).batch(8);
    let mut sequential = SambaCoeNode::new(NodeSpec::sn40l_node(), ExpertLibrary::new(150), 1024);
    let mut prefetched = SambaCoeNode::new(NodeSpec::sn40l_node(), ExpertLibrary::new(150), 1024);
    Ablation {
        name: "expert prefetch overlap",
        with_feature: prefetched
            .serve_batch_prefetched(&batch, 20)
            .total()
            .as_secs(),
        without_feature: sequential.serve_batch(&batch, 20).total().as_secs(),
        unit: "batch seconds (8 cold prompts)",
        higher_is_better: false,
    }
}

/// All ablations in report order.
pub fn all() -> Vec<Ablation> {
    vec![
        flow_ids(),
        bank_bits(),
        throttling(),
        p2p_overlap(),
        spill_policy(),
        expert_cache(),
        readonly_elision(),
        expert_prefetch(),
        power_management(),
        hbm_tier(),
    ]
}

/// Re-export for the reorder-correctness smoke check in the repro binary.
pub fn reorder_smoke() -> bool {
    let mut rb = ReorderBuffer::new(8);
    for i in (0..8).rev() {
        rb.accept(i, i as u64);
    }
    rb.complete() && rb.drain_ordered() == (0..8).map(|i| i as u64).collect::<Vec<_>>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_feature_helps() {
        for a in all() {
            assert!(
                a.factor() >= 1.0,
                "{}: {} vs {} ({})",
                a.name,
                a.with_feature,
                a.without_feature,
                a.unit
            );
        }
    }

    #[test]
    fn droop_ablation_is_25_percent() {
        let a = power_management();
        assert!((a.without_feature / a.with_feature - 0.75).abs() < 1e-6);
    }

    #[test]
    fn lru_beats_fifo_on_looping_trace() {
        let a = expert_cache();
        assert!(
            a.factor() > 1.2,
            "LRU should clearly win: factor {:.2}",
            a.factor()
        );
    }

    #[test]
    fn elision_halves_thrashing_cost() {
        let a = readonly_elision();
        assert!(a.factor() > 1.5, "factor {:.2}", a.factor());
    }

    #[test]
    fn hbm_tier_is_critical_for_decode() {
        let a = hbm_tier();
        assert!(
            a.factor() > 5.0,
            "HBM vs DDR decode factor {:.2}",
            a.factor()
        );
    }

    #[test]
    fn reorder_smoke_passes() {
        assert!(reorder_smoke());
    }
}
