//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each function in [`experiments`] computes the data series behind one
//! exhibit; the `repro` binary formats them, and the Criterion benches
//! under `benches/` time the underlying library operations. Ablations for
//! the design choices called out in DESIGN.md live in [`ablations`].

pub mod ablations;
pub mod experiments;
pub mod faults;
pub mod intra;
pub mod obs;
pub mod par;
pub mod placement;
pub mod profile;
pub mod serve;
pub mod surrogate;
pub mod tenants;
pub mod trace;
pub mod validate;

pub use experiments::{fig1, fig10, fig11, fig12, fig13, table1, table2_rows, table3};
pub use par::{available_jobs, ordered_map};
pub use profile::{bench_snapshot, profiled_fig12_run, ProfiledRun};
