//! Cross-validation between the compiler's *static* models and the
//! cycle-level simulators in `sn-rdusim` (§VII: the "static bandwidth
//! model" is trusted because it agrees with reality to first order — here
//! the executable simulators play the role of reality).

use sn_arch::SocketSpec;
use sn_compiler::{Kernel, Placer};
use sn_dataflow::Graph;
use sn_rdusim::pipeline::{PipelineSim, Stage};
use sn_rdusim::rdn::{Coord, Flow, NetConfig, NetSim};

/// Builds a [`PipelineSim`] stage chain from a compiled kernel: one stage
/// per compute op, service time proportional to its share of the kernel's
/// work, double-buffered.
pub fn kernel_to_pipeline(graph: &Graph, kernel: &Kernel) -> PipelineSim {
    let mut stages = Vec::new();
    for &nid in &kernel.nodes {
        let node = graph.node(nid);
        let flops = graph.node_flops(nid).as_f64();
        if flops <= 0.0 {
            continue; // reorders fold into buffers
        }
        // Service cycles per tile: normalize so the busiest stage is ~64
        // cycles; what matters to the model is the *ratio* between stages.
        stages.push((node.name.clone(), flops));
    }
    if stages.is_empty() {
        stages.push(("identity".to_string(), 1.0));
    }
    let max = stages.iter().map(|(_, f)| *f).fold(0.0f64, f64::max);
    let sim_stages: Vec<Stage> = stages
        .into_iter()
        .map(|(name, f)| Stage::new(name, ((f / max) * 64.0).ceil().max(1.0) as u64, 2))
        .collect();
    PipelineSim::new(sim_stages)
}

/// Relative error between the static pipeline prediction and the
/// cycle-level simulation of the same stage chain over `tiles` tiles.
pub fn pipeline_model_error(graph: &Graph, kernel: &Kernel, tiles: u64) -> f64 {
    let sim = kernel_to_pipeline(graph, kernel);
    let simulated = sim.run(tiles).total.as_u64() as f64;
    let predicted = sim.predicted_cycles(tiles).as_u64() as f64;
    (simulated - predicted).abs() / predicted
}

/// Converts a placed kernel's inter-stage edges into RDN flows and runs
/// the network simulator, returning `(cycles, stall_cycles)` — evidence
/// that snake placement keeps fused pipelines routable.
pub fn route_kernel_on_mesh(graph: &Graph, kernel: &Kernel) -> (u64, u64) {
    let socket = SocketSpec::sn40l();
    let placer = Placer::new(socket.chip.tile);
    let report = placer.place(graph, kernel);
    // One flow per pipeline hop; put sources along column 0 and sinks at
    // increasing offsets scaled by the placement's average hop distance.
    let hops = report.avg_hops.ceil().max(1.0) as usize;
    let stages = kernel.resources.stages.clamp(2, 7);
    let sim = NetSim::new(NetConfig::default());
    let flows: Vec<Flow> = (0..stages - 1)
        .map(|i| {
            Flow::unicast(
                Coord::new((i * hops) % 7, i % 8),
                Coord::new(((i + 1) * hops) % 8, (i + 1) % 8),
                32,
            )
        })
        .collect();
    let stats = sim.run(&flows);
    (stats.cycles, stats.stall_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_arch::Calibration;
    use sn_compiler::{Compiler, FusionPolicy};
    use sn_models::{build, Phase, TransformerConfig};

    fn fused_decode_kernel() -> (Graph, Kernel) {
        let cfg = TransformerConfig::llama2_7b();
        let g = build(&cfg, Phase::Decode { past_tokens: 2048 }, 1, 8).unwrap();
        let compiler = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
        let exe = compiler.compile(&g, FusionPolicy::Spatial).unwrap();
        // Pick a mid-stack layer kernel (a full decoder layer).
        let kernel = exe.kernels()[exe.kernel_count() / 2].clone();
        (g, kernel)
    }

    #[test]
    fn static_pipeline_model_matches_simulation_within_15_percent() {
        let (g, kernel) = fused_decode_kernel();
        let err = pipeline_model_error(&g, &kernel, 256);
        assert!(err < 0.15, "static model error {:.1}%", err * 100.0);
    }

    #[test]
    fn model_error_shrinks_with_more_tiles() {
        // Fill amortizes: long streams converge to the bottleneck rate.
        let (g, kernel) = fused_decode_kernel();
        let short = pipeline_model_error(&g, &kernel, 16);
        let long = pipeline_model_error(&g, &kernel, 1024);
        assert!(long <= short + 0.02, "short {short:.3}, long {long:.3}");
    }

    #[test]
    fn placed_kernels_route_without_pathologies() {
        let (g, kernel) = fused_decode_kernel();
        let (cycles, stalls) = route_kernel_on_mesh(&g, &kernel);
        assert!(cycles > 0);
        // Neighbor-to-neighbor pipeline traffic should be nearly stall-free.
        assert!(
            (stalls as f64) < (cycles as f64) * 2.0,
            "stalls {stalls} vs cycles {cycles}"
        );
    }

    #[test]
    fn fft_kernel_pipeline_also_validates() {
        let g = sn_dataflow::monarch::flash_fft_conv(4, 32, 3);
        let compiler = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
        let exe = compiler.compile(&g, FusionPolicy::Spatial).unwrap();
        let err = pipeline_model_error(&g, &exe.kernels()[0], 256);
        assert!(err < 0.15, "FFT kernel error {:.1}%", err * 100.0);
    }
}
