//! Multi-tenant chaos sweep (`repro -- tenants`): load vs per-class SLO.
//!
//! One fixed scenario, swept over an offered-load multiplier: four named
//! tenants (two interactive, two batch) share a 4-node Samba-CoE cluster
//! while a correlated chaos outage kills two nodes during the peak burst
//! and an SLO-driven autoscaler fights back. Each sweep point is a pure
//! function of `(seed, load multiplier)` — fresh cluster, fresh chaos
//! schedule, fresh controller — so points are independent, reorderable,
//! and the whole sweep routes through the ordered-merge engine with the
//! usual bit-for-bit `parallel == sequential` contract.
//!
//! The table this produces is the robustness claim in one screen: as the
//! load multiplier climbs, interactive p99 stays pinned near its SLO
//! bound while the *batch* class absorbs the pain (shed + preempted
//! counts grow), and every row conserves requests exactly
//! (`submitted = completed + shed`, nothing silently dropped).

use sn_arch::{NodeSpec, TimeSecs};
use sn_coe::scheduler::ArrivalPattern;
use sn_coe::{
    AutoscaleConfig, AutoscaleController, ClassPolicy, CoeCluster, ExpertLibrary, RateLimit,
    SloClass, TenancyConfig, TenancyReport, TenantSpec,
};
use sn_faults::{ChaosSchedule, FaultSite, FaultSpec};
use sn_profile::MachineProfile;

/// Seed shared by every sweep point.
pub const SWEEP_SEED: u64 = 0x7e4a;

/// Nodes the cluster starts with.
pub const SWEEP_NODES: usize = 4;

/// Experts in the library.
pub const SWEEP_EXPERTS: usize = 120;

/// Prompt length of every tenant request.
pub const SWEEP_PROMPT_TOKENS: usize = 512;

/// Baseline interactive requests per tenant at multiplier 1.0.
pub const BASE_INTERACTIVE_REQUESTS: usize = 48;

/// Baseline batch requests per tenant at multiplier 1.0.
pub const BASE_BATCH_REQUESTS: usize = 24;

/// Offered-load multipliers swept.
pub const SWEEP_LOADS: &[f64] = &[0.5, 1.0, 2.0, 4.0];

/// Correlated outage: these nodes crash together during the peak burst.
pub const OUTAGE_NODES: &[usize] = &[2, 3];

/// The outage window (also carries a degraded-fabric fault window), in
/// model time. The peak burst of the arrival mix lands inside it.
pub const OUTAGE_START: TimeSecs = TimeSecs::from_secs(0.05);

/// End of the outage window: crashed nodes restore here.
pub const OUTAGE_END: TimeSecs = TimeSecs::from_secs(0.60);

/// End of the degraded-fabric window. Congestion outlives the outage:
/// restored nodes re-fill their HBM working sets over the same links,
/// so the fabric stays degraded for a while after the crash window.
pub const FABRIC_WINDOW_END: TimeSecs = TimeSecs::from_secs(1.20);

/// One row of the multi-tenant sweep table.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSweepPoint {
    /// Offered-load multiplier applied to every tenant's request count.
    pub load: f64,
    /// Requests submitted across all tenants.
    pub submitted: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests shed, all reasons.
    pub shed: usize,
    /// Batch chunks bumped by interactive traffic at wave boundaries.
    pub preempted: usize,
    /// Interactive end-to-end p99 latency.
    pub interactive_p99: TimeSecs,
    /// Batch end-to-end p99 latency.
    pub batch_p99: TimeSecs,
    /// Interactive completions inside the class SLO bound, per second.
    pub interactive_goodput: f64,
    /// Batch completions inside the class SLO bound, per second.
    pub batch_goodput: f64,
    /// Autoscaler grow actions applied.
    pub scale_ups: usize,
    /// Autoscaler shrink actions applied.
    pub scale_downs: usize,
    /// Experts re-homed by reactive failover during the run.
    pub rehomed: usize,
    /// Healthy nodes when the run finished.
    pub final_nodes: usize,
    /// Serving waves executed.
    pub waves: usize,
    /// Model time to drain the scenario.
    pub makespan: TimeSecs,
    /// Whether `submitted = completed + shed` held exactly.
    pub conserved: bool,
}

/// The class policies and engine tuning every point shares.
pub fn sweep_config() -> TenancyConfig {
    TenancyConfig {
        seed: SWEEP_SEED,
        prompt_tokens: SWEEP_PROMPT_TOKENS,
        wave_tokens: 8,
        per_node_slots: 4,
        interactive: ClassPolicy {
            queue_cap: 64,
            deadline: TimeSecs::from_secs(2.0),
            slo_bound: TimeSecs::from_secs(1.0),
            chunks: 1,
        },
        batch: ClassPolicy {
            queue_cap: 256,
            deadline: TimeSecs::from_secs(30.0),
            slo_bound: TimeSecs::from_secs(10.0),
            chunks: 4,
        },
        max_waves: 100_000,
    }
}

/// The four-tenant mix at a given load multiplier: a steady interactive
/// tenant, a bursty interactive tenant whose burst train peaks inside
/// the outage window, a rate-limited batch tenant, and an unlimited
/// batch backlog that lands at t = 0.
pub fn sweep_tenants(load: f64) -> Vec<TenantSpec> {
    let scaled = |base: usize| ((base as f64 * load).round() as usize).max(1);
    vec![
        TenantSpec {
            name: "chat-steady".into(),
            class: SloClass::Interactive,
            pattern: ArrivalPattern::Poisson { rate_rps: 120.0 },
            requests: scaled(BASE_INTERACTIVE_REQUESTS),
            rate_limit: RateLimit::unlimited(),
        },
        TenantSpec {
            name: "chat-bursty".into(),
            class: SloClass::Interactive,
            pattern: ArrivalPattern::BurstTrain {
                size: 8,
                period: TimeSecs::from_millis(100.0),
            },
            requests: scaled(BASE_INTERACTIVE_REQUESTS),
            rate_limit: RateLimit::unlimited(),
        },
        TenantSpec {
            name: "lab-metered".into(),
            class: SloClass::Batch,
            pattern: ArrivalPattern::Poisson { rate_rps: 60.0 },
            requests: scaled(BASE_BATCH_REQUESTS),
            rate_limit: RateLimit::per_sec(40.0, 16.0),
        },
        TenantSpec {
            name: "lab-backlog".into(),
            class: SloClass::Batch,
            pattern: ArrivalPattern::Burst,
            requests: scaled(BASE_BATCH_REQUESTS),
            rate_limit: RateLimit::unlimited(),
        },
    ]
}

/// The chaos schedule every point replays: [`OUTAGE_NODES`] crash
/// together at [`OUTAGE_START`] and restore at [`OUTAGE_END`], while
/// the socket fabric runs 1.5x slow with a 10% retransmit rate from the
/// crash until [`FABRIC_WINDOW_END`].
pub fn sweep_chaos(seed: u64) -> ChaosSchedule {
    ChaosSchedule::new(seed)
        .with_outage(OUTAGE_NODES, OUTAGE_START, Some(OUTAGE_END))
        .with_window(
            FaultSite::SocketLink,
            FaultSpec {
                fail_rate: 0.10,
                slow_rate: 0.25,
                slow_factor: 1.5,
            },
            OUTAGE_START,
            FABRIC_WINDOW_END,
        )
}

/// The capacity controller every point starts with: act at half the
/// interactive SLO bound (well before the class blows it), never below
/// 2 or above 6 nodes, two-breach patience and a four-wave cooldown so
/// it acts on trends, not spikes.
pub fn sweep_controller() -> AutoscaleController {
    AutoscaleController::new(
        MachineProfile::from_node(&NodeSpec::sn40l_node()),
        AutoscaleConfig {
            min_nodes: 2,
            max_nodes: 6,
            latency_high: TimeSecs::from_millis(400.0),
            latency_low: TimeSecs::from_millis(40.0),
            patience: 2,
            cooldown: 4,
            window: 16,
        },
    )
}

/// The sweep's starting cluster at an explicit intra-run job count —
/// shared by the report helpers here and the `intra_diff` differential
/// harness, so both always race the same shape.
///
/// # Panics
///
/// Panics if the expert library cannot be placed on the starting
/// cluster (a configuration bug, not a runtime condition).
pub fn sweep_cluster_intra(intra_jobs: usize) -> CoeCluster {
    CoeCluster::new(
        NodeSpec::sn40l_node(),
        SWEEP_NODES,
        ExpertLibrary::new(SWEEP_EXPERTS),
        SWEEP_PROMPT_TOKENS,
    )
    .expect("sweep library fits the starting cluster")
    .with_intra_jobs(intra_jobs)
}

/// Runs the full scenario report for one `(seed, load)` point.
///
/// # Panics
///
/// Panics if the expert library cannot be placed on the starting
/// cluster (a configuration bug, not a runtime condition).
pub fn tenants_report_seeded(seed: u64, load: f64) -> TenancyReport {
    tenants_report_seeded_intra(seed, load, 1)
}

/// [`tenants_report_seeded`] with the intra-run parallelism knob:
/// `intra_jobs <= 1` runs the sequential reference wave engine,
/// `intra_jobs > 1` fans per-node lanes across that many threads inside
/// each wave. Byte-identical reports for every value — that is the
/// `intra_diff` contract.
///
/// # Panics
///
/// Panics if the expert library cannot be placed on the starting
/// cluster (a configuration bug, not a runtime condition).
pub fn tenants_report_seeded_intra(seed: u64, load: f64, intra_jobs: usize) -> TenancyReport {
    let mut cluster = sweep_cluster_intra(intra_jobs);
    let mut config = sweep_config();
    config.seed = seed;
    let chaos = sweep_chaos(seed);
    let mut controller = sweep_controller();
    cluster
        .serve_tenants(
            &sweep_tenants(load),
            &config,
            Some(&chaos),
            Some(&mut controller),
        )
        .expect("tenant scenario serves")
}

/// Summarizes one sweep point at `load`.
pub fn tenants_point(load: f64) -> TenantSweepPoint {
    tenants_point_seeded(SWEEP_SEED, load)
}

/// [`tenants_point`] with an explicit seed — the differential tests
/// sweep several seeds to show the parallel/sequential bit-identity is
/// not an artifact of one lucky arrival pattern.
pub fn tenants_point_seeded(seed: u64, load: f64) -> TenantSweepPoint {
    tenants_point_seeded_intra(seed, load, 1)
}

/// [`tenants_point_seeded`] at an explicit intra-run job count.
pub fn tenants_point_seeded_intra(seed: u64, load: f64, intra_jobs: usize) -> TenantSweepPoint {
    let report = tenants_report_seeded_intra(seed, load, intra_jobs);
    let scale_ups = report
        .scale_events
        .iter()
        .filter(|e| e.decision == sn_coe::ScaleDecision::Up)
        .count();
    let scale_downs = report.scale_events.len() - scale_ups;
    TenantSweepPoint {
        load,
        submitted: report.submitted,
        completed: report.records.len(),
        shed: report.shed.len(),
        preempted: report.preemptions,
        interactive_p99: report.latency_percentile(SloClass::Interactive, 0.99),
        batch_p99: report.latency_percentile(SloClass::Batch, 0.99),
        interactive_goodput: report.goodput_rps(SloClass::Interactive),
        batch_goodput: report.goodput_rps(SloClass::Batch),
        scale_ups,
        scale_downs,
        rehomed: report.rehomed_experts,
        final_nodes: report.final_nodes,
        waves: report.waves,
        makespan: report.makespan,
        conserved: report.conservation_holds(),
    }
}

/// The full load sweep over [`SWEEP_LOADS`], sequentially.
pub fn tenants_sweep() -> Vec<TenantSweepPoint> {
    tenants_sweep_jobs(1)
}

/// [`tenants_sweep`] fanned across `jobs` worker threads via the
/// ordered-merge engine. Bit-identical to `tenants_sweep()` for every
/// `jobs` value: each point builds its own cluster, chaos schedule, and
/// controller.
pub fn tenants_sweep_jobs(jobs: usize) -> Vec<TenantSweepPoint> {
    tenants_sweep_seeded_jobs(SWEEP_SEED, jobs)
}

/// [`tenants_sweep_jobs`] with an explicit scenario seed.
pub fn tenants_sweep_seeded_jobs(seed: u64, jobs: usize) -> Vec<TenantSweepPoint> {
    crate::par::ordered_map(jobs, SWEEP_LOADS, |_, &load| {
        tenants_point_seeded(seed, load)
    })
}

/// [`tenants_sweep_jobs`] at an explicit intra-run job count: `jobs`
/// fans whole sweep points across threads (inter-run), `intra_jobs` fans
/// per-node lanes inside every wave of every point (intra-run). The two
/// axes compose, and neither moves a single output byte.
pub fn tenants_sweep_intra(jobs: usize, intra_jobs: usize) -> Vec<TenantSweepPoint> {
    crate::par::ordered_map(jobs, SWEEP_LOADS, |_, &load| {
        tenants_point_seeded_intra(SWEEP_SEED, load, intra_jobs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_coe::ShedReason;

    #[test]
    fn points_are_deterministic() {
        let a = tenants_point(1.0);
        let b = tenants_point(1.0);
        assert_eq!(a, b, "same load, same row");
    }

    #[test]
    fn every_row_conserves_requests() {
        for p in tenants_sweep() {
            assert!(p.conserved, "load {} leaked requests", p.load);
            assert_eq!(p.submitted, p.completed + p.shed);
        }
    }

    #[test]
    fn chaos_actually_bites_and_recovery_happens() {
        let report = tenants_report_seeded(SWEEP_SEED, 2.0);
        assert!(report.rehomed_experts > 0, "outage must force re-homing");
        assert!(
            report.final_nodes >= SWEEP_NODES - OUTAGE_NODES.len(),
            "crashed nodes restore after the window"
        );
        assert!(report.conservation_holds());
    }

    #[test]
    fn batch_class_absorbs_the_overload() {
        let heavy = tenants_point(*SWEEP_LOADS.last().unwrap());
        assert!(
            heavy.shed > 0 && heavy.preempted > 0,
            "4x load over a half-capacity window must shed and preempt"
        );
        // Priority shows in the tails: batch eats the outage delay while
        // the interactive tail stays an order of magnitude tighter.
        assert!(
            heavy.batch_p99 > heavy.interactive_p99 * 2.0,
            "batch p99 {} should dwarf interactive p99 {}",
            heavy.batch_p99,
            heavy.interactive_p99
        );
        // And the metered batch tenant is the one the token bucket bites.
        let report = tenants_report_seeded(SWEEP_SEED, *SWEEP_LOADS.last().unwrap());
        assert!(
            report
                .shed
                .iter()
                .any(|s| s.class == SloClass::Batch && s.reason == ShedReason::RateLimited),
            "lab-metered must hit its rate limit at 4x load"
        );
    }

    #[test]
    fn interactive_p99_holds_its_bound_across_the_sweep() {
        let bound = sweep_config().interactive.slo_bound;
        for p in tenants_sweep() {
            assert!(
                p.interactive_p99 <= bound,
                "load {}: interactive p99 {} blew the {} bound",
                p.load,
                p.interactive_p99,
                bound
            );
        }
    }
}
