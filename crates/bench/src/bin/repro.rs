//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--jobs N] [table1|table2|fig1|fig10|fig11|fig12|fig13|table3|ablations|--faults|all]
//! repro [--jobs N] [--time] serve
//! repro [--jobs N] [--intra-jobs N] tenants
//! repro [--jobs N] placement
//! repro [--jobs N] [--obs out.json] obs
//! repro [--intra-jobs N] intra
//! repro --trace [out.json]
//! repro --profile
//! repro [--jobs N] --bench-json [out.json]
//! repro [--jobs N] --bench-check <baseline.json> [current.json]
//! ```
//!
//! `--jobs N` fans independent sweep points across N worker threads via
//! the deterministic ordered-merge engine (`sn_bench::par`); the default
//! is the host's available parallelism and `--jobs 1` forces the legacy
//! sequential path. Output is byte-identical for every N. `--time` adds
//! wall-clock lines (1 job vs N jobs) to the serve sweep.
//!
//! `--intra-jobs N` parallelizes *inside* each run: per-node work lanes
//! within every serving wave fan across N worker threads with a
//! conservative barrier at wave boundaries (`sn_coe::lanes`). The
//! default 1 keeps the legacy sequential wave engine; any value yields
//! byte-identical output (the `intra_diff` differential harness enforces
//! this). `intra` times one large cluster point (16 nodes, 480 experts,
//! 4096-slot waves) at several intra-job counts and prints the
//! speedup table with a digest-checked zero-drift guarantee.
//!
//! `--trace` replays the Figure 12 SN40L serving point (150 experts,
//! BS=8) with structured tracing enabled, writes a Chrome-trace JSON
//! timeline (load it in <https://ui.perfetto.dev>), and prints the
//! aggregated counter/histogram table. Combine with `--faults` separately
//! to study degraded-mode behaviour; `--trace` itself runs fault-free so
//! timelines are reproducible byte-for-byte.
//!
//! `--profile` replays the same point and prints the roofline bottleneck
//! attribution (per-phase time, attained vs attainable FLOP rate, tier
//! utilization, compute/HBM/DDR/switching classification) plus the
//! serving SLO dashboard (sliding-window latency/TTFT percentiles,
//! tokens/sec, tier utilization gauges).
//!
//! `serve` sweeps offered load (Poisson arrivals) through the online
//! continuous-batching scheduler and prints the throughput–latency
//! curve, calling out the saturation knee.
//!
//! `tenants` sweeps a multi-tenant chaos scenario — four named tenants
//! in two SLO classes, a correlated two-node outage during the peak
//! burst, and an SLO-driven autoscaler — over an offered-load
//! multiplier, printing per-class p99 latency and goodput plus shed /
//! preempt / scale counts for every row.
//!
//! `obs` replays the tenant chaos scenario with the `sn-obs` telemetry
//! pipeline enabled: labeled per-tenant time series, SLO burn-rate
//! alert rules, and post-mortem flight-recorder bundles around the
//! outage. Prints the load sweep, a per-tenant timeline dashboard with
//! sparklines, the alert timeline, and the captured bundles; `--obs
//! out.json` additionally writes the focus run's full telemetry export
//! (schema `sn-obs/v1`). Every point also replays blind and asserts the
//! serving run is bit-identical — observation never steers the system.
//!
//! `placement` sweeps the router-statistics serving policies (predictive
//! prefetch, hot-expert replication, cold re-homing, paged KV cache)
//! against the reactive baseline on one HBM-pressured chaos scenario,
//! printing hit rate, switch-bound share, and prefetch-waste per row.
//!
//! `--bench-json` writes the continuous-benchmark snapshot — every
//! tracked key figure with its tolerance — for `scripts/bench_check.sh`.
//! `--bench-check` compares a current snapshot (regenerated in-process
//! when not given) against a committed baseline and exits non-zero if
//! any tracked metric regressed beyond its tolerance.

use sn_bench::ablations;
use sn_bench::experiments::{self, PROMPT_TOKENS};
use sn_coe::comparison::Platform;

fn hr(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

fn table1() {
    hr("TABLE I: Operational intensity vs fusion level (Monarch FFT, Fig. 3)");
    println!("{:<28} {:>12} {:>12}", "Fusion Level", "Paper", "Measured");
    for r in experiments::table1() {
        println!("{:<28} {:>12.1} {:>12.1}", r.level, r.paper, r.measured);
    }
    println!("(ops/byte; regimes: <150 memory-bound on A100, >150 compute-bound)");
}

fn table2() {
    hr("TABLE II: Benchmarks");
    println!(
        "{:<28} {:>10} {:>14} {:>10}",
        "Benchmark", "Params(B)", "Phase", "Seq"
    );
    for (name, params, phase, seq) in experiments::table2_rows() {
        let p = if params == 0.0 {
            "-".to_string()
        } else {
            format!("{params:.1}")
        };
        println!("{name:<28} {p:>10} {phase:>14} {seq:>10}");
    }
}

fn fig1() {
    hr("FIGURE 1: CoE latency breakdown, 20 output tokens, 150 experts, BS=1");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "Platform", "Router", "Switching", "Prefill", "Decode", "Total", "Switch%"
    );
    for (p, b) in experiments::fig1() {
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>7.1}%",
            p.name(),
            b.router.to_string(),
            b.switching.to_string(),
            b.prefill.to_string(),
            b.decode.to_string(),
            b.total().to_string(),
            100.0 * b.switching_fraction()
        );
    }
}

fn fig10() {
    hr("FIGURE 10: Speedup over unfused baseline (8 SN40L sockets)");
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "Benchmark", "Unfused+SO", "Fused+SO", "Fused+HO", "SO spdup", "HO spdup"
    );
    for r in experiments::fig10() {
        println!(
            "{:<28} {:>12} {:>12} {:>12} {:>9.2}x {:>9.2}x",
            r.name,
            r.unfused_so.to_string(),
            r.fused_so.to_string(),
            r.fused_ho.to_string(),
            r.fusion_speedup,
            r.ho_speedup
        );
    }
    println!("(paper: fusion 1.5x-3x prefill/train, up to 13x decode/FFT; HO adds");
    println!(" 1.4x-8x on decode, <=1.1x on prefill/train)");
}

fn fig11() {
    hr("FIGURE 11: Kernel-call ratio, unfused / fused");
    println!("{:<28} {:>10}", "Benchmark", "Ratio");
    for (name, ratio) in experiments::fig11() {
        println!("{name:<28} {ratio:>9.1}x");
    }
    println!("(paper example: llama7B-4k-inf-prefill = 11x)");
}

fn fig12() {
    for (batch, tag) in [(8usize, "a"), (1usize, "b")] {
        hr(&format!(
            "FIGURE 12{tag}: CoE latency vs expert count (BS={batch}, TP8, 20 tokens, \
             prompt {PROMPT_TOKENS})"
        ));
        println!(
            "{:<10} {:>14} {:>14} {:>14}",
            "Experts", "SN40L", "DGX A100", "DGX H100"
        );
        let fmt = |t: Option<sn_arch::TimeSecs>| match t {
            Some(t) => t.to_string(),
            None => "OOM".to_string(),
        };
        for p in experiments::fig12(batch) {
            println!(
                "{:<10} {:>14} {:>14} {:>14}",
                p.experts,
                fmt(p.sn40l),
                fmt(p.dgx_a100),
                fmt(p.dgx_h100)
            );
        }
    }
}

fn fig13() {
    hr("FIGURE 13: System footprint to sustain TP8 latency");
    println!(
        "{:<10} {:>14} {:>16} {:>16}",
        "Experts", "SN40L nodes", "DGX A100 nodes", "DGX H100 nodes"
    );
    for (n, sn, a, h) in experiments::fig13() {
        println!("{n:<10} {sn:>14} {a:>16} {h:>16}");
    }
    println!("(paper: 1 SN40L node serves 850 experts; DGX needs 19 nodes — 19x footprint)");
}

fn table3() {
    hr("TABLE III: Samba-CoE performance comparison (150 experts)");
    println!(
        "{:<44} {:>8} {:>8} {:>8} {:>8}",
        "Metric", "PaperA", "OursA", "PaperH", "OursH"
    );
    for r in experiments::table3() {
        println!(
            "{:<44} {:>7.1}x {:>7.1}x {:>7.1}x {:>7.1}x",
            r.metric, r.paper_a100, r.vs_a100, r.paper_h100, r.vs_h100
        );
    }
    println!("\n> 150 Experts:");
    for (p, max) in experiments::oom_experts() {
        println!("  {:<12} holds at most {max} experts", p.name());
    }
    let _ = Platform::ALL;
}

fn extensions() {
    hr("EXTENSION: INT8-quantized experts double every capacity boundary");
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14}",
        "Platform", "HBM bf16", "HBM int8", "Max bf16", "Max int8"
    );
    for (name, rb, ri, mb, mi) in sn_bench::experiments::quantization_extension() {
        println!("{name:<12} {rb:>14} {ri:>14} {mb:>14} {mi:>14}");
    }
    println!("(resident experts in HBM / maximum hostable experts per node)");

    hr("EXTENSION: sustained decode throughput (llama2-7b, TP8, KV=2048, BS=1)");
    println!("{:<12} {:>14}", "Platform", "tokens/sec");
    for (name, tps) in sn_bench::experiments::throughput_extension() {
        println!("{name:<12} {tps:>14.0}");
    }

    hr("EXTENSION: expert miss rate vs node HBM size (skewed drifting trace)");
    println!("{:<12} {:>12}", "HBM (GiB)", "miss rate");
    for (gib, miss) in sn_bench::experiments::hbm_sensitivity() {
        println!("{gib:<12} {:>11.1}%", miss * 100.0);
    }
}

fn run_serve(jobs: usize, timed: bool) {
    use sn_bench::serve;
    hr(&format!(
        "ONLINE SERVING: Poisson offered-load sweep ({} experts, {} requests, \
         max in-flight {})",
        serve::SWEEP_EXPERTS,
        serve::SWEEP_REQUESTS,
        serve::SWEEP_MAX_IN_FLIGHT
    ));
    println!(
        "{:<10} {:>10} {:>7} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "Offered", "Delivered", "Waves", "Queue p95", "TTFT p95", "Lat p50", "Lat p95", "Tokens/s"
    );
    let wall = std::time::Instant::now();
    let points = serve::serve_sweep_jobs(jobs);
    let par_ms = wall.elapsed().as_secs_f64() * 1e3;
    for p in &points {
        println!(
            "{:<10} {:>10} {:>7} {:>12} {:>12} {:>12} {:>12} {:>10.1}",
            format!("{:.0} rps", p.offered_rps),
            format!("{:.1} rps", p.delivered_rps),
            p.waves,
            p.queue_delay_p95.to_string(),
            p.ttft_p95.to_string(),
            p.latency_p50.to_string(),
            p.latency_p95.to_string(),
            p.tokens_per_sec,
        );
    }
    match serve::knee_rps(&points) {
        Some(knee) => println!(
            "\nsaturation knee at ~{knee:.0} rps offered: beyond it the queue, not the \
             arrival process, sets the pace"
        ),
        None => println!("\nno saturation inside the sweep: every offered rate was absorbed"),
    }
    if timed {
        // Self-timing harness: re-run the sweep on the legacy sequential
        // path and report the speedup. Printed only under --time so the
        // plain `serve` output stays byte-identical across --jobs values.
        let wall = std::time::Instant::now();
        let seq = serve::serve_sweep_jobs(1);
        let seq_ms = wall.elapsed().as_secs_f64() * 1e3;
        assert_eq!(seq, points, "parallel sweep must match the legacy path");
        println!(
            "\nsweep wall-clock: {seq_ms:.1} ms at 1 job, {par_ms:.1} ms at {jobs} job(s) \
             ({:.2}x speedup, {} host cores)",
            seq_ms / par_ms.max(1e-9),
            sn_bench::par::available_jobs(),
        );
    }
}

fn run_faults(jobs: usize) {
    hr("FAULT INJECTION: single-node degradation vs fault rate (150 experts)");
    println!(
        "{:<8} {:>14} {:>12} {:>9} {:>12}",
        "Rate", "Mean latency", "Recovery%", "Retries", "Batches OK"
    );
    for p in sn_bench::faults::node_fault_sweep_jobs(jobs) {
        println!(
            "{:<8} {:>14} {:>11.1}% {:>9} {:>9}/{}",
            format!("{:.0}%", p.rate * 100.0),
            p.mean_latency.to_string(),
            p.recovery_fraction * 100.0,
            p.retries,
            p.completed,
            p.attempted
        );
    }
    println!("(expert-load/socket/router faults at the given rate; 3-retry backoff)");

    hr("FAULT INJECTION: 3-node cluster failover vs fault rate (300 experts)");
    println!(
        "{:<8} {:>14} {:>14} {:>9} {:>12}",
        "Rate", "Mean latency", "Availability", "Re-homed", "Nodes down"
    );
    for p in sn_bench::faults::cluster_fault_sweep_jobs(jobs) {
        println!(
            "{:<8} {:>14} {:>13.1}% {:>9} {:>12}",
            format!("{:.0}%", p.rate * 100.0),
            p.mean_latency.to_string(),
            p.availability * 100.0,
            p.rehomed,
            p.failed_nodes
        );
    }
    println!("(node crashes at the given rate per node per batch; crashed nodes'");
    println!(" prompts re-home their experts onto survivors over DDR)");
}

fn run_tenants(jobs: usize, intra_jobs: usize) {
    use sn_bench::tenants;
    hr(&format!(
        "MULTI-TENANT CHAOS: load sweep, {} nodes, kill {:?} during {}..{}",
        tenants::SWEEP_NODES,
        tenants::OUTAGE_NODES,
        tenants::OUTAGE_START,
        tenants::OUTAGE_END,
    ));
    println!(
        "{:<6} {:>9} {:>6} {:>6} {:>6} {:>12} {:>12} {:>9} {:>9} {:>6} {:>6}",
        "Load",
        "Submitted",
        "Done",
        "Shed",
        "Preempt",
        "Int p99",
        "Batch p99",
        "Int gp/s",
        "Bat gp/s",
        "Scale",
        "Nodes"
    );
    let points = tenants::tenants_sweep_intra(jobs, intra_jobs);
    for p in &points {
        println!(
            "{:<6} {:>9} {:>6} {:>6} {:>6} {:>12} {:>12} {:>9.1} {:>9.1} {:>6} {:>6}",
            format!("{:.1}x", p.load),
            p.submitted,
            p.completed,
            p.shed,
            p.preempted,
            p.interactive_p99.to_string(),
            p.batch_p99.to_string(),
            p.interactive_goodput,
            p.batch_goodput,
            format!("+{}-{}", p.scale_ups, p.scale_downs),
            p.final_nodes,
        );
        assert!(p.conserved, "request conservation must hold at every load");
    }
    let bound = tenants::sweep_config().interactive.slo_bound;
    println!(
        "\ninteractive SLO bound {bound}: every row's interactive p99 holds it while batch \
         absorbs the\noutage (shed + preempted); the autoscaler re-homes experts onto added \
         nodes after the window"
    );
}

fn run_placement(jobs: usize) {
    use sn_bench::placement;
    hr(&format!(
        "PLACEMENT POLICIES: reactive vs stats-driven serving, {} experts on {} nodes, \
         kill node {} during {}..{}",
        placement::SWEEP_EXPERTS,
        placement::SWEEP_NODES,
        placement::OUTAGE_NODE,
        placement::OUTAGE_START,
        placement::OUTAGE_END,
    ));
    println!(
        "{:<6} {:<6} {:<6} {:>6} {:>11} {:>7} {:>11} {:>8} {:>8} {:>6} {:>10} {:>6} {:>6} {:>8}",
        "Load",
        "Polcy",
        "Chaos",
        "Waves",
        "Makespan",
        "HitRate",
        "SwitchTime",
        "Switch%",
        "Prefetch",
        "PfAcc",
        "PfWasted",
        "Repl",
        "Moves",
        "KV in/ev"
    );
    let points = placement::placement_sweep_jobs(jobs);
    for p in &points {
        println!(
            "{:<6} {:<6} {:<6} {:>6} {:>11} {:>7.3} {:>11} {:>7.1}% {:>8} {:>6} {:>10} {:>6} \
             {:>6} {:>8}",
            format!("{:.1}x", p.case.load),
            if p.case.policies { "on" } else { "off" },
            if p.case.chaos { "on" } else { "off" },
            p.waves,
            p.makespan.to_string(),
            p.hit_rate,
            p.switch_time.to_string(),
            100.0 * p.switch_bound_fraction,
            p.prefetch_issued,
            if p.prefetch_issued > 0 {
                format!("{:.2}", p.prefetch_accuracy)
            } else {
                "-".to_string()
            },
            p.prefetch_wasted.to_string(),
            p.experts_replicated,
            p.cold_moves,
            format!("{}/{}", p.kv_pages_in, p.kv_pages_evicted),
        );
        assert!(p.conserved, "request conservation must hold at every point");
        assert!(
            p.kv_pages_in >= p.kv_pages_evicted,
            "KV page conservation must hold at every point"
        );
    }
    println!(
        "\npolicies on: router statistics drive hot-expert replication, cold re-homing, and \
         speculative\nDDR->HBM prefetch at wave boundaries; mispredictions expire as wasted \
         bandwidth (PfWasted).\nUnder the chaos rows the managed cluster holds a higher HBM hit \
         rate and sheds switch time\nrelative to the reactive baseline on the same scenario."
    );
}

fn run_obs(jobs: usize, export: Option<&str>) {
    use sn_bench::obs;
    use sn_bench::tenants;
    hr(&format!(
        "OBSERVABILITY: tenant chaos scenario under the sn-obs pipeline, kill {:?} during {}..{}",
        tenants::OUTAGE_NODES,
        tenants::OUTAGE_START,
        tenants::OUTAGE_END,
    ));
    println!(
        "{:<6} {:>6} {:>7} {:>8} {:>6} {:>9} {:>12} {:>6} {:>10}",
        "Load", "Waves", "Series", "Samples", "Fired", "Resolved", "Postmortems", "Shed", "Blind=="
    );
    for p in obs::obs_sweep_jobs(jobs) {
        println!(
            "{:<6} {:>6} {:>7} {:>8} {:>6} {:>9} {:>12} {:>6} {:>10}",
            format!("{:.1}x", p.load),
            p.waves,
            p.series,
            p.samples,
            p.fired,
            p.resolved,
            p.postmortems,
            p.shed,
            if p.identical { "yes" } else { "NO" },
        );
        assert!(
            p.identical,
            "observing the run must never change it (load {})",
            p.load
        );
    }
    println!(
        "\nfocus dashboard at {:.1}x load (budget {:.0}%, burn factor {}x over {}/{}-wave \
         windows):\n",
        obs::OBS_FOCUS_LOAD,
        obs::OBS_ERROR_BUDGET * 100.0,
        obs::OBS_BURN_FACTOR,
        obs::OBS_FAST_WINDOW,
        obs::OBS_SLOW_WINDOW,
    );
    let (_, report, identical) = obs::obs_focus_run();
    assert!(identical, "focus run must match its blind replay");
    print!("{}", obs::render_dashboard(&report));
    if let Some(path) = export {
        let json = report.to_json();
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write telemetry export to {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "\nwrote {path} ({} bytes, {} series, {} alert transitions, {} bundles)",
            json.len(),
            report.series.len(),
            report.alerts.len(),
            report.postmortems.len()
        );
    }
}

fn run_intra(intra_jobs: usize) {
    use sn_bench::intra;
    hr(&format!(
        "INTRA-RUN PARALLELISM: {} nodes, {} experts, {} waves x {} slots, \
         per-node lanes inside each wave",
        intra::INTRA_NODES,
        intra::INTRA_EXPERTS,
        intra::INTRA_WAVES,
        intra::INTRA_WAVE_SLOTS,
    ));
    let mut counts = vec![1usize, 2, 4];
    if !counts.contains(&intra_jobs) {
        counts.push(intra_jobs);
    }
    println!(
        "{:<12} {:>12} {:>10} {:>18}",
        "Intra-jobs", "Wall (ms)", "Speedup", "Digest"
    );
    // intra_sweep panics if any job count's digest drifts from the
    // sequential reference, so a printed speedup is always drift-free.
    let points = intra::intra_sweep(&counts);
    let base_ms = points
        .iter()
        .find(|p| p.intra_jobs == 1)
        .expect("sequential reference point")
        .wall_ms;
    for p in &points {
        println!(
            "{:<12} {:>12.2} {:>9.2}x {:>18}",
            p.intra_jobs,
            p.wall_ms,
            base_ms / p.wall_ms.max(1e-9),
            format!("{:016x}", p.digest.checksum),
        );
    }
    println!(
        "\nevery row served {} slots ({} hits / {} misses) with identical digests: the\n\
         speedup is pure wave-internal parallelism plus route-table memoization, not drift",
        points[0].digest.served, points[0].digest.expert_hits, points[0].digest.expert_misses,
    );
}

fn run_ablations() {
    hr("ABLATIONS (design choices from DESIGN.md)");
    println!(
        "{:<46} {:>12} {:>12} {:>8}",
        "Feature", "With", "Without", "Factor"
    );
    for a in ablations::all() {
        println!(
            "{:<46} {:>12.4} {:>12.4} {:>7.2}x   ({})",
            a.name,
            a.with_feature,
            a.without_feature,
            a.factor(),
            a.unit
        );
    }
    assert!(
        ablations::reorder_smoke(),
        "sequence-ID reordering smoke check"
    );
}

fn run_trace(path: &str) {
    hr("TRACE: Figure 12 SN40L serving point (150 experts, BS=8, 20 tokens)");
    let run = sn_bench::trace::traced_fig12_run(150, 8);
    if let Err(e) = std::fs::write(path, &run.trace_json) {
        eprintln!("cannot write trace to {path}: {e}");
        std::process::exit(1);
    }
    let report = &run.report;
    println!(
        "served 8 prompts: total {} (router {}, switching {}, execution {})",
        report.total(),
        report.router,
        report.switching,
        report.execution
    );
    let metrics = report.metrics.as_ref().expect("tracer attached");
    println!("\n{}", metrics.render_table());
    println!(
        "wrote {} ({} bytes) — open in https://ui.perfetto.dev or chrome://tracing",
        path,
        run.trace_json.len()
    );
}

fn run_profile() {
    hr("PROFILE: roofline attribution, Figure 12 point (150 experts, BS=8, 20 tokens)");
    let run = sn_bench::profile::profiled_fig12_run(150, 8, 4);
    println!(
        "served {} batches of 8 prompts; last batch total {}\n",
        run.batches,
        run.report.total()
    );
    println!("{}", run.attribution.render_table());
    let dominant_kind = run.attribution.dominant().expect("phases sampled");
    let dominant = run.attribution.phase(dominant_kind).expect("phase sampled");
    println!(
        "dominant phase: {} ({:.1}% of batch, {})\n",
        dominant.kind.name(),
        100.0 * dominant.fraction,
        dominant.bound.name()
    );
    println!("{}", run.slo().render_table());
    let metrics = run.report.metrics.as_ref().expect("tracer attached");
    if let Some(q) = sn_profile::request_latency_quantiles(metrics) {
        println!(
            "per-request latency (histogram upper bounds): p50 <= {} ns, p95 <= {} ns, \
             p99 <= {} ns",
            q.p50_ns, q.p95_ns, q.p99_ns
        );
    }
}

fn run_surrogate(jobs: usize, timed: bool) {
    hr("SURROGATE: calibrated analytical grid with exact-sim spot checks");
    let wall = std::time::Instant::now();
    let suite = sn_bench::surrogate::surrogate_suite(jobs);
    let suite_ms = wall.elapsed().as_secs_f64() * 1e3;

    println!(
        "calibration anchors ({} exact runs; fit {} basis terms per metric):",
        suite.anchors.len(),
        sn_surrogate::BASIS
    );
    println!(
        "  {:<28} {:>6} {:>6} {:>9} {:>9} {:>8} {:>11}",
        "anchor", "waves", "occup", "i.p99 ms", "hit rate", "sw.bound", "makespan ms"
    );
    for a in &suite.anchors {
        let e = &a.anchor.exact;
        println!(
            "  {:<28} {:>6} {:>6.3} {:>9.2} {:>9.3} {:>8.3} {:>11.1}",
            a.label,
            a.waves.waves,
            a.waves.mean_occupancy,
            e.values[0],
            e.values[4],
            e.values[5],
            e.values[6],
        );
    }

    println!(
        "\npredicted grid: {} cells (nodes x chaos x mix x load) — {}x the exact sweep",
        suite.predictions.len(),
        suite.predictions.len() / sn_bench::tenants::SWEEP_LOADS.len()
    );
    let (worst_cell, worst) = suite
        .predictions
        .iter()
        .max_by(|a, b| {
            a.1.values[6]
                .partial_cmp(&b.1.values[6])
                .expect("finite makespans")
        })
        .expect("grid is non-empty");
    println!(
        "  longest predicted drain: n{} x{:.2}{}{} -> {:.1} ms makespan, {:.3} hit rate",
        worst_cell.nodes,
        worst_cell.load,
        if worst_cell.chaos { " chaos" } else { "" },
        if worst_cell.batch_heavy {
            " batch+"
        } else {
            ""
        },
        worst.values[6],
        worst.values[4],
    );

    println!(
        "\nexact spot checks (seed {:#x}):",
        sn_bench::surrogate::SPOT_SEED
    );
    println!(
        "  {:<24} {:>13} {:>13} {:>13} {:>10}",
        "cell", "i.p99 p/e ms", "hit p/e", "makespan p/e", "worst err"
    );
    for s in &suite.spots {
        let worst_err = s.errors.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  n{:<2} x{:<4.2}{:<7}{:<7} {:>6.1}/{:<6.1} {:>6.3}/{:<6.3} {:>6.0}/{:<6.0} {:>10.3}",
            s.case.nodes,
            s.case.load,
            if s.case.chaos { " chaos" } else { "" },
            if s.case.batch_heavy { " batch+" } else { "" },
            s.predicted.values[0],
            s.exact.values[0],
            s.predicted.values[4],
            s.exact.values[4],
            s.predicted.values[6],
            s.exact.values[6],
            worst_err,
        );
    }

    println!("\nper-metric worst relative error vs committed budget:");
    for (m, name) in sn_surrogate::METRIC_NAMES.iter().enumerate() {
        println!(
            "  {:<26} {:>7.3} / {:<5.2} {}",
            name,
            suite.max_errors[m],
            sn_bench::surrogate::ERROR_BUDGETS[m],
            if suite.max_errors[m] <= sn_bench::surrogate::ERROR_BUDGETS[m] {
                "ok"
            } else {
                "OVER"
            }
        );
    }
    assert!(
        suite.gate,
        "surrogate drift gate: a spot-check error exceeded its committed budget"
    );
    println!("gate: PASS — every metric within budget");
    if timed {
        println!("suite wall-clock {suite_ms:.1} ms at {jobs} jobs");
    }
}

fn run_bench_json(path: &str, jobs: usize) {
    hr("BENCH SNAPSHOT: tracked key figures for the regression harness");
    let wall = std::time::Instant::now();
    let (mut snap, suite) = sn_bench::profile::bench_snapshot_suite_jobs(jobs);
    let elapsed_ms = wall.elapsed().as_secs_f64() * 1e3;
    snap.push_info("simulator_wall_clock_ms", &format!("{elapsed_ms:.1}"));
    // Sweep wall-clock, legacy path vs the requested fan-out. Info
    // entries are recorded but never compared, so timing noise cannot
    // trip the bench gate.
    let wall = std::time::Instant::now();
    let seq_points = sn_bench::serve::serve_sweep_jobs(1);
    let seq_ms = wall.elapsed().as_secs_f64() * 1e3;
    let wall = std::time::Instant::now();
    let par_points = sn_bench::serve::serve_sweep_jobs(jobs);
    let par_ms = wall.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        seq_points, par_points,
        "parallel sweep must match the legacy path"
    );
    snap.push_info("serve_sweep_jobs", &jobs.to_string());
    snap.push_info("host_cores", &sn_bench::par::available_jobs().to_string());
    snap.push_info("serve_sweep_wall_ms_1job", &format!("{seq_ms:.1}"));
    snap.push_info(
        &format!("serve_sweep_wall_ms_{jobs}jobs"),
        &format!("{par_ms:.1}"),
    );
    snap.push_info(
        "serve_sweep_speedup",
        &format!("{:.2}", seq_ms / par_ms.max(1e-9)),
    );
    // Intra-run lane-engine timing on the large cluster point.
    // `intra_sweep` asserts digest equality across job counts before
    // returning, so these rows can never record a speedup bought with
    // metric drift; the wall-clock itself stays in info rows (recorded,
    // never compared) like every other timing figure.
    let intra_points = sn_bench::intra::intra_sweep(&[1, 2, 4]);
    let intra_seq_ms = intra_points
        .iter()
        .find(|p| p.intra_jobs == 1)
        .expect("sequential intra point")
        .wall_ms;
    for p in &intra_points {
        snap.push_info(
            &format!("intra_wall_ms_{}jobs", p.intra_jobs),
            &format!("{:.2}", p.wall_ms),
        );
        if p.intra_jobs > 1 {
            snap.push_info(
                &format!("intra_speedup_{}jobs", p.intra_jobs),
                &format!("{:.2}", intra_seq_ms / p.wall_ms.max(1e-9)),
            );
        }
    }
    snap.push_info(
        "intra_digest",
        &format!("{:016x}", intra_points[0].digest.checksum),
    );
    // Surrogate scale claim: predicting the whole grid must cost less
    // wall-clock than one exact tenants sweep. The predictions reuse
    // the calibration the snapshot's suite already fitted; both walls
    // ride as info rows (recorded, never compared).
    let wall = std::time::Instant::now();
    let grid = sn_bench::surrogate::predict_grid_jobs(&suite.calibration, jobs);
    let predict_ms = wall.elapsed().as_secs_f64() * 1e3;
    let wall = std::time::Instant::now();
    let exact_sweep = sn_bench::tenants::tenants_sweep_jobs(jobs);
    let exact_ms = wall.elapsed().as_secs_f64() * 1e3;
    snap.push_info("surrogate_grid_points", &grid.len().to_string());
    snap.push_info(
        "surrogate_grid_vs_exact_sweep_size",
        &format!("{}", grid.len() / exact_sweep.len().max(1)),
    );
    snap.push_info("surrogate_predict_wall_ms", &format!("{predict_ms:.2}"));
    snap.push_info("tenants_exact_sweep_wall_ms", &format!("{exact_ms:.2}"));
    snap.push_info(
        "surrogate_predict_speedup",
        &format!("{:.1}", exact_ms / predict_ms.max(1e-9)),
    );
    let json = snap.to_json();
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("cannot write snapshot to {path}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {path} ({} bytes, {} tracked metrics, simulator wall-clock {elapsed_ms:.1} ms)",
        json.len(),
        snap.metrics.len()
    );
}

fn load_snapshot(path: &str) -> sn_profile::BenchSnapshot {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read snapshot {path}: {e}");
            std::process::exit(1);
        }
    };
    match sn_profile::BenchSnapshot::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot parse snapshot {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn run_bench_check(baseline_path: &str, current_path: Option<&str>, jobs: usize) {
    hr(&format!(
        "BENCH CHECK: current run vs baseline {baseline_path}"
    ));
    let baseline = load_snapshot(baseline_path);
    let current = match current_path {
        Some(p) => load_snapshot(p),
        None => sn_bench::profile::bench_snapshot_jobs(jobs),
    };
    let report = baseline.compare(&current);
    println!("{}", report.render_table());
    if report.passed() {
        println!("bench check PASSED: all tracked metrics within tolerance");
    } else {
        eprintln!(
            "bench check FAILED: {} metric(s) regressed or missing",
            report.regressions()
        );
        std::process::exit(1);
    }
}

fn usage_exit(complaint: &str) -> ! {
    eprintln!("{complaint}");
    eprintln!(
        "usage: repro [--jobs N] [--intra-jobs N] [--time] [--obs out.json] [table1|table2|\
         fig1|fig10|fig11|fig12|fig13|table3|ablations|extensions|serve|tenants|placement|\
         obs|intra|surrogate|--faults|--trace [out.json]|--profile|--bench-json [out.json]|\
         --bench-check <baseline> [current]|all]"
    );
    std::process::exit(2);
}

fn main() {
    let mut jobs = sn_bench::par::available_jobs();
    let mut intra_jobs = 1usize;
    let mut timed = false;
    let mut obs_export: Option<String> = None;
    let mut args: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        let jobs_value = if a == "--jobs" {
            Some(raw.next().unwrap_or_default())
        } else {
            a.strip_prefix("--jobs=").map(str::to_string)
        };
        let intra_value = if a == "--intra-jobs" {
            Some(raw.next().unwrap_or_default())
        } else {
            a.strip_prefix("--intra-jobs=").map(str::to_string)
        };
        let obs_value = if a == "--obs" {
            Some(raw.next().unwrap_or_default())
        } else {
            a.strip_prefix("--obs=").map(str::to_string)
        };
        if let Some(v) = intra_value {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => intra_jobs = n,
                _ => usage_exit(&format!("--intra-jobs wants a positive integer, got '{v}'")),
            }
        } else if let Some(v) = jobs_value {
            match v.parse::<usize>() {
                Ok(n) if n >= 1 => jobs = n,
                _ => usage_exit(&format!("--jobs wants a positive integer, got '{v}'")),
            }
        } else if let Some(v) = obs_value {
            if v.is_empty() {
                usage_exit("--obs wants an output path");
            }
            obs_export = Some(v);
        } else if a == "--time" {
            timed = true;
        } else {
            args.push(a);
        }
    }
    let what = args.first().map(String::as_str).unwrap_or("all");
    match what {
        "trace" | "--trace" => {
            let path = args.get(1).map(String::as_str).unwrap_or("trace.json");
            run_trace(path);
            return;
        }
        "profile" | "--profile" => {
            run_profile();
            return;
        }
        "bench-json" | "--bench-json" => {
            let path = args.get(1).map(String::as_str).unwrap_or("BENCH_PR10.json");
            run_bench_json(path, jobs);
            return;
        }
        "bench-check" | "--bench-check" => {
            let Some(baseline) = args.get(1) else {
                eprintln!("usage: repro --bench-check <baseline.json> [current.json]");
                std::process::exit(2);
            };
            run_bench_check(baseline, args.get(2).map(String::as_str), jobs);
            return;
        }
        _ => {}
    }
    match what {
        "table1" => table1(),
        "table2" => table2(),
        "fig1" => fig1(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "fig13" => fig13(),
        "table3" => table3(),
        "ablations" => run_ablations(),
        "extensions" => extensions(),
        "faults" | "--faults" => run_faults(jobs),
        "serve" | "--serve" => run_serve(jobs, timed),
        "tenants" | "--tenants" => run_tenants(jobs, intra_jobs),
        "placement" | "--placement" => run_placement(jobs),
        "obs" => run_obs(jobs, obs_export.as_deref()),
        "intra" | "--intra" => run_intra(intra_jobs),
        "surrogate" | "--surrogate" => run_surrogate(jobs, timed),
        "all" => {
            table1();
            table2();
            fig1();
            fig10();
            fig11();
            fig12();
            fig13();
            table3();
            extensions();
            run_faults(jobs);
            run_serve(jobs, timed);
            run_tenants(jobs, intra_jobs);
            run_placement(jobs);
            run_obs(jobs, obs_export.as_deref());
            run_surrogate(jobs, timed);
            run_ablations();
        }
        other => usage_exit(&format!("unknown experiment '{other}'")),
    }
}
