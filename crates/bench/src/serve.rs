//! Online serving sweep (`repro -- serve`): offered load vs latency.
//!
//! Replays the Figure 12 SN40L operating point (150 experts, 1024-token
//! prompts, 20 output tokens) as an *online* workload: Poisson arrivals
//! at each offered rate stream through the continuous-batching scheduler
//! with a bounded admission window, and each rate contributes one point
//! of the throughput–latency curve. Low rates serve every request in its
//! own admission wave (queueing ≈ 0); past the node's service rate the
//! queue grows without bound and p95 latency blows up — the saturation
//! knee every serving system has. The curve is deterministic (seeded
//! arrivals, analytic timing), so its points join the continuous-bench
//! snapshot gate with tight tolerances.

use sn_arch::{NodeSpec, TimeSecs};
use sn_coe::scheduler::{ArrivalProcess, SchedulerConfig};
use sn_coe::{ExpertLibrary, SambaCoeNode};

use crate::experiments::PROMPT_TOKENS;
use crate::profile::OUTPUT_TOKENS;

/// Seed shared by every sweep point: same prompts, same per-request
/// service demand — only the arrival spacing changes with the rate.
pub const SWEEP_SEED: u64 = 0x5eed;

/// Requests per sweep point.
pub const SWEEP_REQUESTS: usize = 64;

/// Experts in the library (the Figure 12 anchor).
pub const SWEEP_EXPERTS: usize = 150;

/// Admission window: at most this many requests decode concurrently.
pub const SWEEP_MAX_IN_FLIGHT: usize = 8;

/// Offered loads swept, in requests per second. Chosen to straddle the
/// node's service rate so the saturation knee is visible mid-sweep.
pub const SWEEP_RATES: &[f64] = &[2.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0];

/// One point of the throughput–latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSweepPoint {
    /// Offered load (Poisson rate), requests/sec.
    pub offered_rps: f64,
    /// Delivered request throughput: requests / makespan.
    pub delivered_rps: f64,
    /// Admission waves the scheduler opened.
    pub waves: usize,
    /// 95th-percentile queueing delay.
    pub queue_delay_p95: TimeSecs,
    /// 95th-percentile time-to-first-token.
    pub ttft_p95: TimeSecs,
    /// Median end-to-end request latency.
    pub latency_p50: TimeSecs,
    /// 95th-percentile end-to-end request latency.
    pub latency_p95: TimeSecs,
    /// Output tokens per second of makespan.
    pub tokens_per_sec: f64,
    /// Clock when the last request completed.
    pub makespan: TimeSecs,
}

/// Serves [`SWEEP_REQUESTS`] Poisson arrivals at `rate_rps` on a fresh
/// node and summarizes the run. Fresh node per point: every rate starts
/// from a cold HBM cache, so points are independent and reorderable.
///
/// # Panics
///
/// Panics when `rate_rps` is not positive (arrival-process contract).
pub fn serve_point(rate_rps: f64) -> ServeSweepPoint {
    serve_point_seeded(SWEEP_SEED, rate_rps)
}

/// [`serve_point`] with an explicit arrival seed — the differential
/// tests sweep several seeds to show parallel/sequential bit-identity
/// is not an artifact of one lucky arrival pattern.
///
/// # Panics
///
/// Panics when `rate_rps` is not positive (arrival-process contract).
pub fn serve_point_seeded(seed: u64, rate_rps: f64) -> ServeSweepPoint {
    let mut node = SambaCoeNode::new(
        NodeSpec::sn40l_node(),
        ExpertLibrary::new(SWEEP_EXPERTS),
        PROMPT_TOKENS,
    );
    let requests = ArrivalProcess::poisson(seed, PROMPT_TOKENS, rate_rps).generate(SWEEP_REQUESTS);
    let out = node.serve_online(
        &requests,
        OUTPUT_TOKENS,
        SchedulerConfig::bounded(SWEEP_MAX_IN_FLIGHT),
    );
    let pct = out.percentiles();
    let makespan_secs = out.makespan.as_secs();
    ServeSweepPoint {
        offered_rps: rate_rps,
        delivered_rps: if makespan_secs > 0.0 {
            out.records.len() as f64 / makespan_secs
        } else {
            0.0
        },
        waves: out.waves,
        queue_delay_p95: pct.queue_delay(0.95),
        ttft_p95: pct.ttft(0.95),
        latency_p50: pct.latency(0.50),
        latency_p95: pct.latency(0.95),
        tokens_per_sec: out.tokens_per_sec(),
        makespan: out.makespan,
    }
}

/// The full offered-load sweep over [`SWEEP_RATES`].
pub fn serve_sweep() -> Vec<ServeSweepPoint> {
    serve_sweep_jobs(1)
}

/// [`serve_sweep`] fanned across `jobs` worker threads via the
/// ordered-merge engine. Bit-identical to `serve_sweep()` for every
/// `jobs` value: each point builds its own node and arrival stream.
pub fn serve_sweep_jobs(jobs: usize) -> Vec<ServeSweepPoint> {
    serve_sweep_seeded_jobs(SWEEP_SEED, jobs)
}

/// [`serve_sweep_jobs`] with an explicit arrival seed.
pub fn serve_sweep_seeded_jobs(seed: u64, jobs: usize) -> Vec<ServeSweepPoint> {
    crate::par::ordered_map(jobs, SWEEP_RATES, |_, &r| serve_point_seeded(seed, r))
}

/// The saturation knee: the first offered rate whose delivered
/// throughput falls more than 10% short of the offered load — beyond it
/// the queue, not the arrival process, sets the pace. `None` when even
/// the highest swept rate is fully absorbed.
pub fn knee_rps(points: &[ServeSweepPoint]) -> Option<f64> {
    points
        .iter()
        .find(|p| p.delivered_rps < 0.9 * p.offered_rps)
        .map(|p| p.offered_rps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic() {
        let a = serve_point(10.0);
        let b = serve_point(10.0);
        assert_eq!(a, b, "same rate, same curve point");
    }

    #[test]
    fn latency_rises_monotonically_into_saturation() {
        let light = serve_point(SWEEP_RATES[0]);
        let heavy = serve_point(*SWEEP_RATES.last().unwrap());
        assert!(
            heavy.latency_p95 > light.latency_p95,
            "offered load must cost latency: {} vs {}",
            heavy.latency_p95,
            light.latency_p95
        );
        assert!(
            heavy.queue_delay_p95 > light.queue_delay_p95,
            "saturation shows up as queueing"
        );
        // Delivered throughput saturates at the node's service rate.
        assert!(heavy.delivered_rps < heavy.offered_rps);
    }

    #[test]
    fn sweep_has_a_visible_knee() {
        let points = serve_sweep();
        let knee = knee_rps(&points).expect("the sweep crosses saturation");
        assert!(
            knee > SWEEP_RATES[0] && knee <= *SWEEP_RATES.last().unwrap(),
            "knee {knee} should land inside the sweep"
        );
    }
}
