//! Degraded-mode serving curves: latency and availability vs fault rate.
//!
//! The paper's serving numbers assume a healthy machine. These sweeps
//! quantify how gracefully the Samba-CoE stack degrades when the fault
//! layer injects DMA corruption, socket drops, router timeouts, and node
//! crashes at increasing rates — the curves behind `repro --faults`.

use sn_arch::{NodeSpec, TimeSecs};
use sn_coe::{CoeCluster, ExpertLibrary, PromptGenerator, SambaCoeNode};
use sn_faults::{FaultPlan, FaultSite, FaultSpec, RetryPolicy};
use sn_runtime::coe::CoeError;
use std::sync::Arc;

/// Fault rates swept by both curves.
pub const FAULT_RATES: [f64; 5] = [0.0, 0.01, 0.05, 0.1, 0.2];

const SEED: u64 = 0xFA_17;
const PROMPT_TOKENS: usize = 512;
const OUTPUT_TOKENS: usize = 10;
const BATCHES: usize = 6;
const BATCH_SIZE: usize = 8;

/// One point of the single-node degradation curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFaultPoint {
    /// Injected per-operation fault rate (fail; slowdowns ride at the
    /// same rate with a 2x factor on the socket fabric).
    pub rate: f64,
    /// Mean latency of the batches that completed.
    pub mean_latency: TimeSecs,
    /// Mean fraction of completed-batch time spent on fault recovery.
    pub recovery_fraction: f64,
    /// Retries absorbed across all completed batches.
    pub retries: u32,
    /// Batches that completed despite injected faults.
    pub completed: usize,
    /// Batches attempted.
    pub attempted: usize,
}

/// Sweeps the single-node serve path: expert-load, socket, and router
/// faults at each rate, absorbed by the standard retry policy.
pub fn node_fault_sweep() -> Vec<NodeFaultPoint> {
    node_fault_sweep_jobs(1)
}

/// [`node_fault_sweep`] fanned across `jobs` worker threads. Each arm
/// builds its own fault plan, node, and prompt generator, so the curve
/// is bit-identical for every `jobs` value.
pub fn node_fault_sweep_jobs(jobs: usize) -> Vec<NodeFaultPoint> {
    crate::par::ordered_map(jobs, &FAULT_RATES, |_, &rate| node_fault_point(rate))
}

/// One arm of the single-node degradation sweep, at fault rate `rate`.
pub fn node_fault_point(rate: f64) -> NodeFaultPoint {
    let plan = Arc::new(
        FaultPlan::new(SEED)
            .with_site(FaultSite::ExpertLoad, FaultSpec::failing(rate))
            .with_site(
                FaultSite::SocketLink,
                FaultSpec {
                    fail_rate: rate,
                    slow_rate: rate,
                    slow_factor: 2.0,
                },
            )
            .with_site(FaultSite::RouterDecision, FaultSpec::failing(rate)),
    );
    let mut node = SambaCoeNode::new(
        NodeSpec::sn40l_node(),
        ExpertLibrary::new(150),
        PROMPT_TOKENS,
    )
    .with_faults(plan, RetryPolicy::standard());
    let mut generator = PromptGenerator::new(42, PROMPT_TOKENS);
    let mut latency = TimeSecs::ZERO;
    let mut recovery_fraction = 0.0;
    let mut retries = 0;
    let mut completed = 0;
    for _ in 0..BATCHES {
        let batch = generator.batch(BATCH_SIZE);
        if let Ok(report) = node.try_serve_batch(&batch, OUTPUT_TOKENS) {
            latency += report.total();
            recovery_fraction += report.recovery_fraction();
            retries += report.retries;
            completed += 1;
        }
    }
    let denom = completed.max(1) as f64;
    NodeFaultPoint {
        rate,
        mean_latency: latency / denom,
        recovery_fraction: recovery_fraction / denom,
        retries,
        completed,
        attempted: BATCHES,
    }
}

/// One point of the cluster failover curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterFaultPoint {
    /// Injected fault rate: expert-load failures per load, and node
    /// crashes per node per batch.
    pub rate: f64,
    /// Mean batch latency (completed batches).
    pub mean_latency: TimeSecs,
    /// Prompts served over prompts offered, across the whole sweep.
    pub availability: f64,
    /// Experts re-homed onto survivors after node crashes.
    pub rehomed: usize,
    /// Nodes down by the end of the run (of 3).
    pub failed_nodes: usize,
}

/// Sweeps a 3-node cluster: expert-load faults plus node crashes, with
/// prompts from crashed nodes failing over to survivors.
pub fn cluster_fault_sweep() -> Vec<ClusterFaultPoint> {
    cluster_fault_sweep_jobs(1)
}

/// [`cluster_fault_sweep`] fanned across `jobs` worker threads; arms
/// are independent, so the curve is bit-identical for every `jobs`.
pub fn cluster_fault_sweep_jobs(jobs: usize) -> Vec<ClusterFaultPoint> {
    crate::par::ordered_map(jobs, &FAULT_RATES, |_, &rate| cluster_fault_point(rate))
}

/// One arm of the cluster failover sweep, at fault rate `rate`.
pub fn cluster_fault_point(rate: f64) -> ClusterFaultPoint {
    let plan = Arc::new(
        FaultPlan::new(SEED)
            .with_site(FaultSite::ExpertLoad, FaultSpec::failing(rate))
            .with_site(FaultSite::NodeFailure, FaultSpec::failing(rate)),
    );
    let mut cluster = CoeCluster::new(
        NodeSpec::sn40l_node(),
        3,
        ExpertLibrary::new(300),
        PROMPT_TOKENS,
    )
    .expect("3 nodes hold 300 experts")
    .with_faults(plan, RetryPolicy::standard());
    let mut generator = PromptGenerator::new(42, PROMPT_TOKENS);
    let mut latency = TimeSecs::ZERO;
    let mut served = 0usize;
    let mut offered = 0usize;
    let mut rehomed = 0;
    let mut completed = 0;
    for _ in 0..BATCHES {
        let batch = generator.batch(BATCH_SIZE);
        offered += batch.len();
        match cluster.try_serve_batch(&batch, OUTPUT_TOKENS) {
            Ok(report) => {
                latency += report.latency;
                served += report.prompts_per_node.iter().sum::<usize>();
                rehomed += report.rehomed_experts;
                completed += 1;
            }
            Err(CoeError::NoHealthyNodes) => break,
            Err(e) => panic!("unexpected cluster error: {e}"),
        }
    }
    ClusterFaultPoint {
        rate,
        mean_latency: latency / completed.max(1) as f64,
        availability: if offered == 0 {
            0.0
        } else {
            served as f64 / offered as f64
        },
        rehomed,
        failed_nodes: cluster.failed_nodes().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_point_is_clean() {
        let sweep = node_fault_sweep();
        assert_eq!(sweep[0].rate, 0.0);
        assert_eq!(sweep[0].retries, 0);
        assert_eq!(sweep[0].recovery_fraction, 0.0);
        assert_eq!(sweep[0].completed, sweep[0].attempted);
    }

    #[test]
    fn latency_degrades_monotonically_enough() {
        // Not strictly monotone batch to batch (fault draws are lumpy),
        // but the top rate must cost more than the clean baseline.
        let sweep = node_fault_sweep();
        let clean = sweep[0].mean_latency.as_secs();
        let worst = sweep.last().unwrap().mean_latency.as_secs();
        assert!(
            worst > clean,
            "20% faults must cost latency: {worst} vs {clean}"
        );
        assert!(sweep.last().unwrap().retries > 0);
    }

    #[test]
    fn cluster_sweep_keeps_availability_high_via_failover() {
        let sweep = cluster_fault_sweep();
        assert_eq!(sweep[0].availability, 1.0, "no faults, no drops");
        for point in &sweep {
            assert!(
                point.availability > 0.9,
                "failover keeps availability up at rate {}: {}",
                point.rate,
                point.availability
            );
        }
    }
}
