//! Data series for every table and figure in the paper's evaluation.

use sn_arch::{Bytes, Calibration, DgxSpec, NodeSpec, Orchestration, SocketSpec, TimeSecs};
use sn_baseline::{dgx_nodes_needed, sn40l_nodes_needed};
use sn_coe::comparison::{ComparisonModel, LatencyBreakdown, Platform};
use sn_compiler::{Compiler, FusionPolicy};
use sn_dataflow::intensity::{fusion_levels, FusionLevel};
use sn_dataflow::monarch::monarch_fig3;
use sn_models::table2;
use sn_runtime::executor::NodeExecutor;

/// Prompt length used for all CoE latency experiments (the paper does not
/// state one; 1 KiB-token prompts are typical of the chatbot/translation
/// use cases it cites).
pub const PROMPT_TOKENS: usize = 1024;

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub level: &'static str,
    pub paper: f64,
    pub measured: f64,
}

/// Table I: operational intensity of the Figure 3 example at three fusion
/// levels.
pub fn table1() -> Vec<Table1Row> {
    let g = monarch_fig3();
    let levels = fusion_levels(&g);
    vec![
        Table1Row {
            level: "No Fusion",
            paper: 39.5,
            measured: levels[&FusionLevel::None],
        },
        Table1Row {
            level: "Gemm0 - Mul - Transpose",
            paper: 102.6,
            measured: levels[&FusionLevel::Partial],
        },
        Table1Row {
            level: "Fully Spatially Fused",
            paper: 410.4,
            measured: levels[&FusionLevel::Full],
        },
    ]
}

/// Table II rows: `(name, params, phase tag, seq)`.
pub fn table2_rows() -> Vec<(String, f64, String, usize)> {
    table2()
        .into_iter()
        .map(|b| {
            let params = if b.fft_conv {
                0.0
            } else {
                b.config.param_count() as f64 / 1e9
            };
            (b.name.clone(), params, format!("{:?}", b.phase), b.seq)
        })
        .collect()
}

/// One bar group of Figure 10 (plus the Figure 11 ratio).
#[derive(Debug, Clone)]
pub struct Fig10Row {
    pub name: String,
    pub unfused_so: TimeSecs,
    pub fused_so: TimeSecs,
    pub fused_ho: TimeSecs,
    /// Blue bar: Fused+SO speedup over unfused.
    pub fusion_speedup: f64,
    /// Orange bar: Fused+HO speedup over unfused.
    pub ho_speedup: f64,
    /// Figure 11: unfused kernel launches over fused kernel launches.
    pub kernel_ratio: f64,
}

/// Figure 10: speedups over the unfused baseline for every Table II
/// benchmark, software- and hardware-orchestrated. Benchmarks compile and
/// evaluate concurrently (the suite spans 17 workloads up to 176B
/// parameters).
pub fn fig10() -> Vec<Fig10Row> {
    let calib = Calibration::baseline();
    let compiler = Compiler::new(SocketSpec::sn40l(), calib.clone());
    let node = NodeExecutor::new(NodeSpec::sn40l_node(), calib);
    let benches = table2();
    let mut rows: Vec<Option<Fig10Row>> = (0..benches.len()).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (slot, b) in rows.iter_mut().zip(&benches) {
            let compiler = &compiler;
            let node = &node;
            scope.spawn(move |_| {
                let graph = b.build_graph();
                let unfused = compiler
                    .compile(&graph, FusionPolicy::Unfused)
                    .expect("benchmarks compile unfused");
                let fused = compiler
                    .compile(&graph, FusionPolicy::Spatial)
                    .expect("benchmarks compile fused");
                let unfused_so = node.run(&unfused, Orchestration::Software).total;
                let fused_so = node.run(&fused, Orchestration::Software).total;
                let fused_ho = node.run(&fused, Orchestration::Hardware).total;
                *slot = Some(Fig10Row {
                    name: b.name.clone(),
                    unfused_so,
                    fused_so,
                    fused_ho,
                    fusion_speedup: unfused_so / fused_so,
                    ho_speedup: unfused_so / fused_ho,
                    kernel_ratio: unfused.kernel_count() as f64 / fused.kernel_count() as f64,
                });
            });
        }
    })
    .expect("benchmark threads do not panic");
    rows.into_iter()
        .map(|r| r.expect("every benchmark filled its slot"))
        .collect()
}

/// Figure 11: the kernel-call ratios (projection of [`fig10`]).
pub fn fig11() -> Vec<(String, f64)> {
    fig10()
        .into_iter()
        .map(|r| (r.name, r.kernel_ratio))
        .collect()
}

/// Figure 1: per-platform latency breakdown for one 20-token request
/// against the 150-expert CoE.
pub fn fig1() -> Vec<(Platform, LatencyBreakdown)> {
    let model = ComparisonModel::new(PROMPT_TOKENS);
    Platform::ALL
        .iter()
        .map(|&p| {
            let b = model
                .request_latency(p, 150, 1, 20)
                .expect("150 experts fit every platform");
            (p, b)
        })
        .collect()
}

/// One point of Figure 12.
#[derive(Debug, Clone)]
pub struct Fig12Point {
    pub experts: usize,
    pub sn40l: Option<TimeSecs>,
    pub dgx_a100: Option<TimeSecs>,
    pub dgx_h100: Option<TimeSecs>,
}

/// Expert counts swept in Figure 12/13.
pub fn expert_sweep() -> Vec<usize> {
    vec![
        1, 5, 10, 20, 30, 40, 46, 50, 60, 80, 100, 120, 150, 200, 300, 500, 700, 850,
    ]
}

/// Figure 12: CoE latency vs expert count at a given batch size
/// (12a: BS=8, 12b: BS=1), 20 output tokens, TP8.
pub fn fig12(batch: usize) -> Vec<Fig12Point> {
    let model = ComparisonModel::new(PROMPT_TOKENS);
    expert_sweep()
        .into_iter()
        .map(|n| Fig12Point {
            experts: n,
            sn40l: model
                .request_latency(Platform::Sn40l, n, batch, 20)
                .map(|b| b.total()),
            dgx_a100: model
                .request_latency(Platform::DgxA100, n, batch, 20)
                .map(|b| b.total()),
            dgx_h100: model
                .request_latency(Platform::DgxH100, n, batch, 20)
                .map(|b| b.total()),
        })
        .collect()
}

/// Figure 13: nodes needed to sustain TP8 latency vs expert count.
pub fn fig13() -> Vec<(usize, usize, usize, usize)> {
    let expert = Bytes::from_gb(13.48);
    let sn = NodeSpec::sn40l_node();
    let a = DgxSpec::dgx_a100();
    let h = DgxSpec::dgx_h100();
    expert_sweep()
        .into_iter()
        .map(|n| {
            (
                n,
                sn40l_nodes_needed(&sn, n, expert),
                dgx_nodes_needed(&a, n, expert),
                dgx_nodes_needed(&h, n, expert),
            )
        })
        .collect()
}

/// One row of Table III.
#[derive(Debug, Clone)]
pub struct Table3Row {
    pub metric: &'static str,
    pub paper_a100: f64,
    pub paper_h100: f64,
    pub vs_a100: f64,
    pub vs_h100: f64,
}

/// Table III: Samba-CoE performance vs DGX A100 and DGX H100 at 150
/// experts.
pub fn table3() -> Vec<Table3Row> {
    let model = ComparisonModel::new(PROMPT_TOKENS);
    let total = |p, bs, toks| {
        model
            .request_latency(p, 150, bs, toks)
            .expect("150 experts fit every platform")
            .total()
    };
    let exec = |p, toks| {
        model
            .request_latency(p, 150, 1, toks)
            .expect("150 experts fit every platform")
            .execution()
    };
    let switch = |p| {
        model
            .request_latency(p, 150, 8, 20)
            .expect("150 experts fit every platform")
            .switching
    };
    let sn = Platform::Sn40l;
    let a = Platform::DgxA100;
    let h = Platform::DgxH100;
    vec![
        Table3Row {
            metric: "Overall Speedup, BS=8, 20 output tokens",
            paper_a100: 6.6,
            paper_h100: 3.7,
            vs_a100: total(a, 8, 20) / total(sn, 8, 20),
            vs_h100: total(h, 8, 20) / total(sn, 8, 20),
        },
        Table3Row {
            metric: "Overall Speedup, BS=1, 20 output tokens",
            paper_a100: 4.8,
            paper_h100: 2.8,
            vs_a100: total(a, 1, 20) / total(sn, 1, 20),
            vs_h100: total(h, 1, 20) / total(sn, 1, 20),
        },
        Table3Row {
            metric: "Expert Speedup, BS=1, 20 output tokens",
            paper_a100: 2.0,
            paper_h100: 1.5,
            vs_a100: exec(a, 20) / exec(sn, 20),
            vs_h100: exec(h, 20) / exec(sn, 20),
        },
        Table3Row {
            metric: "Overall Speedup, BS=8, 200 output tokens",
            paper_a100: 4.2,
            paper_h100: 2.7,
            vs_a100: total(a, 8, 200) / total(sn, 8, 200),
            vs_h100: total(h, 8, 200) / total(sn, 8, 200),
        },
        Table3Row {
            metric: "Overall Speedup, BS=1, 200 output tokens",
            paper_a100: 3.9,
            paper_h100: 2.6,
            vs_a100: total(a, 1, 200) / total(sn, 1, 200),
            vs_h100: total(h, 1, 200) / total(sn, 1, 200),
        },
        Table3Row {
            metric: "Expert Speedup, BS=1, 200 output tokens",
            paper_a100: 3.2,
            paper_h100: 2.3,
            vs_a100: exec(a, 200) / exec(sn, 200),
            vs_h100: exec(h, 200) / exec(sn, 200),
        },
        Table3Row {
            metric: "Model Switching Time",
            paper_a100: 31.0,
            paper_h100: 15.0,
            vs_a100: switch(a) / switch(sn),
            vs_h100: switch(h) / switch(sn),
        },
    ]
}

/// Table III's last row: the expert count where each platform OOMs.
pub fn oom_experts() -> Vec<(Platform, usize)> {
    let model = ComparisonModel::new(PROMPT_TOKENS);
    Platform::ALL
        .iter()
        .map(|&p| (p, model.max_experts(p)))
        .collect()
}

/// Extension experiment: INT8-quantized experts double every capacity
/// boundary (experts per HBM, per node, per DGX). Returns rows of
/// `(platform, bf16 resident, int8 resident, bf16 max, int8 max)`.
pub fn quantization_extension() -> Vec<(&'static str, usize, usize, usize, usize)> {
    use sn_models::TransformerConfig;
    let bf16 = TransformerConfig::llama2_7b().param_bytes();
    let int8 = TransformerConfig::llama2_7b()
        .quantized_int8()
        .param_bytes();
    let node = NodeSpec::sn40l_node();
    let dgx = DgxSpec::dgx_a100();
    let fit = |cap: Bytes, per: Bytes| (cap.as_f64() / per.as_f64()) as usize;
    let sn_hbm = node.hbm_capacity().saturating_sub(Bytes::from_gib(48));
    vec![
        (
            "SN40L Node",
            fit(sn_hbm, bf16),
            fit(sn_hbm, int8),
            fit(node.ddr_capacity(), bf16),
            fit(node.ddr_capacity(), int8),
        ),
        (
            "DGX A100",
            fit(dgx.hbm_for_experts(), bf16),
            fit(dgx.hbm_for_experts(), int8),
            fit(dgx.total_expert_capacity(), bf16),
            fit(dgx.total_expert_capacity(), int8),
        ),
    ]
}

/// Extension experiment: HBM-size sensitivity under a realistic skewed,
/// drifting request trace (§III-B temporal locality). Returns rows of
/// `(hbm_gib, switching_fraction)` for a 150-expert CoE.
pub fn hbm_sensitivity() -> Vec<(u64, f64)> {
    use sn_coe::{ExpertLibrary, Router, TraceConfig, TraceGenerator};
    use sn_models::TransformerConfig;
    use sn_runtime::coe::{CoeRuntime, CoeRuntimeConfig};
    let expert_bytes = TransformerConfig::llama2_7b().param_bytes();
    let library = ExpertLibrary::samba_coe_150();
    let router = Router::new(0xbeef);
    [128u64, 192, 256, 320, 384, 448, 512]
        .into_iter()
        .map(|hbm_gib| {
            let mut node = NodeSpec::sn40l_node();
            node.socket.hbm.capacity = Bytes::from_gib(hbm_gib / node.sockets as u64);
            let mut rt = CoeRuntime::new(
                &node,
                CoeRuntimeConfig {
                    hbm_reserved: Bytes::from_gib(48),
                    ..Default::default()
                },
            );
            for e in library.experts() {
                rt.register(sn_runtime::coe::ModelBinary::weights_only(
                    e.name.clone(),
                    expert_bytes,
                ))
                .expect("library fits DDR");
            }
            let mut trace = TraceGenerator::new(2026, TraceConfig::default());
            let mut switch = TimeSecs::ZERO;
            let n_requests = 2000;
            for p in trace.batch(n_requests) {
                let e = router.route(&p, library.len());
                switch += rt
                    .activate(&library.expert(e).name)
                    .expect("registered")
                    .switch_time;
            }
            let stats = rt.stats();
            let miss_rate = stats.misses as f64 / (stats.hits + stats.misses) as f64;
            let _ = switch;
            (hbm_gib, miss_rate)
        })
        .collect()
}

/// Extension experiment: sustained single-expert decode throughput
/// (tokens per second per node, steady state, BS=1) on each platform.
pub fn throughput_extension() -> Vec<(&'static str, f64)> {
    use sn_coe::GenerationModel;
    use sn_models::TransformerConfig;
    let cfg = TransformerConfig::llama2_7b();
    let sn = GenerationModel::sn40l(&cfg, 8);
    let a = GenerationModel::dgx(&DgxSpec::dgx_a100(), &cfg, 8);
    let h = GenerationModel::dgx(&DgxSpec::dgx_h100(), &cfg, 8);
    let tps = |m: &GenerationModel| 1.0 / m.step(2048).as_secs();
    vec![
        ("SN40L Node", tps(&sn)),
        ("DGX A100", tps(&a)),
        ("DGX H100", tps(&h)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_regimes() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        // Regime check: memory-bound, memory-bound, compute-bound on an
        // A100-class balance of ~150 FLOPs/byte.
        assert!(rows[0].measured < 150.0);
        assert!(rows[1].measured < 150.0);
        assert!(rows[2].measured > 150.0);
        assert!(rows[0].measured < rows[1].measured);
        assert!(rows[1].measured < rows[2].measured);
    }

    #[test]
    fn fig13_endpoints_match_paper() {
        let rows = fig13();
        let last = rows.last().unwrap();
        assert_eq!(last.0, 850);
        assert_eq!(last.1, 1, "one SN40L node at 850 experts");
        assert!((18..=20).contains(&last.2), "~19 DGX A100 nodes");
    }

    #[test]
    fn fig12_has_dgx_gaps_beyond_oom() {
        let points = fig12(1);
        let last = points.last().unwrap();
        assert!(last.sn40l.is_some());
        assert!(last.dgx_a100.is_none(), "DGX cannot host 850 experts");
    }

    #[test]
    fn throughput_ordering_matches_the_paper() {
        let rows = throughput_extension();
        let get = |n: &str| rows.iter().find(|(p, _)| *p == n).unwrap().1;
        assert!(get("SN40L Node") > get("DGX H100"));
        assert!(get("DGX H100") > get("DGX A100"));
    }

    #[test]
    fn bigger_hbm_misses_less() {
        let rows = hbm_sensitivity();
        let first = rows.first().unwrap().1;
        let last = rows.last().unwrap().1;
        assert!(
            last < first * 0.6,
            "miss rate should fall with HBM: {first:.2} -> {last:.2}"
        );
        assert!(
            last < 0.55,
            "512 GiB absorbs most of the skewed working set: {last:.2}"
        );
    }

    #[test]
    fn oom_ordering_matches_table3() {
        let ooms = oom_experts();
        let get = |p: Platform| ooms.iter().find(|(q, _)| *q == p).unwrap().1;
        assert!(get(Platform::Sn40l) >= 850);
        assert!(get(Platform::DgxA100) <= 155);
        assert!(get(Platform::DgxA100) >= 150);
    }
}
