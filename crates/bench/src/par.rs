//! Deterministic parallel sweep engine: fan independent simulation
//! points out across worker threads while keeping the output vector
//! bit-identical to the sequential loop.
//!
//! Every sweep in this crate — the `repro serve` offered-load sweep, the
//! `--faults` degradation curves, the bench-snapshot metric runs, and
//! the property-harness case batches in `tests/common` — evaluates a
//! pure function per point: each point builds its own node, draws from
//! its own seeded RNG stream, and shares no mutable state with its
//! neighbours. That makes the fan-out contract simple and strong:
//!
//! > **same inputs → same ordered output vector as the sequential
//! > loop, bit-for-bit, for every `jobs` value.**
//!
//! [`ordered_map`] delivers that with a work-stealing-free ordered-merge
//! scheduler: workers claim the next unclaimed *input index* from a
//! shared counter (no per-worker deques, no stealing, so the set of
//! points a run evaluates never depends on timing), evaluate the point,
//! and park the result in that index's dedicated slot. The merge is by
//! slot index, so the output order is the input order no matter which
//! worker finished first. Scheduling order can vary run to run; the
//! output cannot, because each slot's value is a pure function of its
//! input alone.
//!
//! `jobs <= 1` (or a single-item input) short-circuits to the plain
//! sequential `for` loop — the legacy path `repro --jobs 1` forces —
//! so the differential tests in `crates/bench/tests/par_diff.rs` can
//! compare the two paths exactly.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads to use by default: the host's available parallelism,
/// falling back to 1 when the runtime cannot tell.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` with up to `jobs` worker threads, returning
/// results in input order — bit-identical to
/// `items.iter().enumerate().map(..).collect()` whenever `f` is a pure
/// function of `(index, item)`.
///
/// `jobs` is clamped to `[1, items.len()]`; `jobs <= 1` runs the
/// sequential loop on the calling thread with no thread machinery at
/// all. A panic in any worker propagates to the caller (the scoped
/// spawn re-raises it), so failing sweep points fail the run just like
/// the sequential loop would.
pub fn ordered_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        // The legacy sequential path: what every caller did before the
        // engine existed, and the reference the parallel path must match.
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // One result slot per input index: the ordered merge is "read the
    // slots in index order", independent of completion order.
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(i, &items[i]);
                *slots[i].lock() = Some(result);
            });
        }
    })
    .expect("sweep worker panicked");
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every claimed slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree_bit_for_bit() {
        let items: Vec<u64> = (0..97).collect();
        let f = |i: usize, &x: &u64| -> (usize, u64, f64) {
            // A float expression sensitive to evaluation order would
            // expose any cross-point mixing.
            (i, x.wrapping_mul(0x9e37_79b9), (x as f64).sqrt() * 3.5)
        };
        let seq = ordered_map(1, &items, f);
        for jobs in [2, 3, 4, 8, 64] {
            assert_eq!(seq, ordered_map(jobs, &items, f), "jobs={jobs}");
        }
    }

    #[test]
    fn output_order_is_input_order_under_skewed_costs() {
        // Early items cost the most: a completion-ordered merge would
        // reverse the vector.
        let items: Vec<usize> = (0..16).collect();
        let out = ordered_map(4, &items, |i, &x| {
            let spins = (16 - i) * 10_000;
            let mut acc = x as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
            }
            (i, acc & 1) // acc keeps the spin loop from being optimized out
        });
        let indices: Vec<usize> = out.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, items);
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        let empty: Vec<u32> = Vec::new();
        assert!(ordered_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(ordered_map(0, &[7u32], |_, &x| x + 1), vec![8]);
        assert_eq!(ordered_map(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn available_jobs_is_at_least_one() {
        assert!(available_jobs() >= 1);
    }
}
