//! Intra-run parallelism benchmark (`repro intra`): one large cluster
//! point, timed at several `--intra-jobs` values.
//!
//! PR 5's `--jobs` fans independent *sweep points* across threads; this
//! scenario is the opposite regime — a single big run (16 nodes, 480
//! experts, 4096-slot waves) where all the time is inside `serve_wave`
//! and inter-run parallelism has nothing to grab. The intra-run lane
//! engine attacks exactly this shape: the route pass memoizes into a
//! table lookup, and the per-node cursor walks fan across worker
//! threads with a conservative barrier at each wave boundary.
//!
//! Every run folds its complete output — placements, per-node busy
//! times, hit/miss counters — into an [`IntraDigest`] whose checksum
//! covers the raw f64 bits, so "zero metric drift" between job counts
//! is a single `PartialEq` away and any divergence is loud.

use sn_arch::{NodeSpec, TimeSecs};
use sn_coe::{CoeCluster, ExpertLibrary, PromptGenerator, WavePlacement, WaveSlot};
use std::time::Instant;

/// Seed for the scenario's prompt stream.
pub const INTRA_SEED: u64 = 0x1a7e5;

/// Cluster size — the "large cluster point" of the acceptance bar.
pub const INTRA_NODES: usize = 16;

/// Experts in the library (30 per node's worth of routing spread).
pub const INTRA_EXPERTS: usize = 480;

/// Prompt length of every request.
pub const INTRA_PROMPT_TOKENS: usize = 512;

/// Slots per wave: continuous batching at full cluster occupancy.
pub const INTRA_WAVE_SLOTS: usize = 4096;

/// Waves served per run.
pub const INTRA_WAVES: usize = 24;

/// Decode tokens charged per wave.
pub const INTRA_WAVE_TOKENS: usize = 8;

/// Complete, order-independent summary of one scenario run.
///
/// The checksum folds the f64 bit patterns of every placement offset
/// and per-node busy time, so two digests compare equal iff the runs
/// were byte-identical — the zero-drift half of the PR 9 acceptance
/// bar rides on `assert_eq!` between digests at different job counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntraDigest {
    /// Waves served.
    pub waves: usize,
    /// Slots that landed on a node, all waves.
    pub served: usize,
    /// Slots dropped (always 0 on this fault-free scenario).
    pub dropped: usize,
    /// Warm expert activations.
    pub expert_hits: usize,
    /// Cold expert activations.
    pub expert_misses: usize,
    /// FNV-1a over every wave's latency, per-node busy times, and
    /// per-slot `(first_token, done)` offsets, as raw f64 bits.
    pub checksum: u64,
}

/// One timed scenario run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntraPoint {
    /// The job count the run executed at.
    pub intra_jobs: usize,
    /// The run's digest (identical across job counts).
    pub digest: IntraDigest,
    /// Wall-clock of the serving loop alone (cluster build and prompt
    /// generation excluded), best of [`TIMING_REPS`] repetitions.
    pub wall_ms: f64,
}

/// Serving-loop repetitions per timed point (best-of, to keep the
/// wall-clock rows stable on loaded CI hosts).
pub const TIMING_REPS: usize = 3;

fn fnv1a(hash: &mut u64, word: u64) {
    const PRIME: u64 = 0x100_0000_01b3;
    *hash ^= word;
    *hash = hash.wrapping_mul(PRIME);
}

fn fold_time(hash: &mut u64, t: TimeSecs) {
    fnv1a(hash, t.as_secs().to_bits());
}

/// The scenario's slot stream: [`INTRA_WAVES`] waves of
/// [`INTRA_WAVE_SLOTS`] slots each, from one continuous seeded prompt
/// stream, with a deterministic prefill/decode mix (two thirds of the
/// slots charge prefill, the rest continue decoding).
pub fn intra_waves() -> Vec<Vec<WaveSlot>> {
    let mut gen = PromptGenerator::new(INTRA_SEED, INTRA_PROMPT_TOKENS);
    (0..INTRA_WAVES)
        .map(|wave| {
            gen.batch(INTRA_WAVE_SLOTS)
                .into_iter()
                .enumerate()
                .map(|(i, prompt)| WaveSlot {
                    prompt,
                    prefill: (i + wave) % 3 != 0,
                })
                .collect()
        })
        .collect()
}

fn build_cluster(intra_jobs: usize) -> CoeCluster {
    CoeCluster::new(
        NodeSpec::sn40l_node(),
        INTRA_NODES,
        ExpertLibrary::new(INTRA_EXPERTS),
        INTRA_PROMPT_TOKENS,
    )
    .expect("intra scenario library fits the cluster")
    .with_intra_jobs(intra_jobs)
}

fn serve_all(cluster: &mut CoeCluster, waves: &[Vec<WaveSlot>]) -> Vec<sn_coe::WaveOutcome> {
    waves
        .iter()
        .map(|slots| {
            cluster
                .serve_wave(slots, INTRA_WAVE_TOKENS)
                .expect("healthy cluster serves")
        })
        .collect()
}

fn digest_outcomes(outcomes: &[sn_coe::WaveOutcome]) -> IntraDigest {
    let mut digest = IntraDigest {
        waves: 0,
        served: 0,
        dropped: 0,
        expert_hits: 0,
        expert_misses: 0,
        checksum: 0xcbf2_9ce4_8422_2325,
    };
    for outcome in outcomes {
        digest.waves += 1;
        digest.expert_hits += outcome.expert_hits;
        digest.expert_misses += outcome.expert_misses;
        fold_time(&mut digest.checksum, outcome.latency);
        for &t in &outcome.per_node {
            fold_time(&mut digest.checksum, t);
        }
        for p in &outcome.placements {
            match *p {
                WavePlacement::Served {
                    node,
                    first_token,
                    done,
                } => {
                    digest.served += 1;
                    fnv1a(&mut digest.checksum, node as u64);
                    fold_time(&mut digest.checksum, first_token);
                    fold_time(&mut digest.checksum, done);
                }
                WavePlacement::Dropped => digest.dropped += 1,
            }
        }
    }
    digest
}

/// One scenario execution at `intra_jobs`: a warmup pass over the wave
/// list brings expert residency, the route table, and the lane pool to
/// steady state, then the timed pass serves the same waves again. The
/// digest covers the timed pass — both passes run the identical engine,
/// so the digest is job-count-invariant either way, and the wall-clock
/// measures serving, not cold-start graph compilation or thread spawns.
fn run_scenario(intra_jobs: usize, waves: &[Vec<WaveSlot>]) -> (IntraDigest, f64) {
    let mut cluster = build_cluster(intra_jobs);
    let warmup = serve_all(&mut cluster, waves);
    drop(warmup);
    let start = Instant::now();
    let outcomes = serve_all(&mut cluster, waves);
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (digest_outcomes(&outcomes), ms)
}

/// Runs the scenario once at `intra_jobs` and digests the timed pass.
///
/// # Panics
///
/// Panics if the library cannot be placed on the cluster (a
/// configuration bug, not a runtime condition).
pub fn intra_digest(intra_jobs: usize) -> IntraDigest {
    run_scenario(intra_jobs, &intra_waves()).0
}

/// Times the scenario at `intra_jobs`: best steady-state wall-clock of
/// [`TIMING_REPS`] runs, each on a fresh cluster so expert-residency
/// state never carries across repetitions. The digest is checked
/// identical across repetitions before returning.
///
/// # Panics
///
/// Panics if repetitions disagree — a determinism bug this harness
/// exists to catch.
pub fn intra_point(intra_jobs: usize) -> IntraPoint {
    let waves = intra_waves();
    let mut best_ms = f64::INFINITY;
    let mut digest = None;
    for _ in 0..TIMING_REPS {
        let (d, ms) = run_scenario(intra_jobs, &waves);
        best_ms = best_ms.min(ms);
        match digest {
            None => digest = Some(d),
            Some(prev) => assert_eq!(prev, d, "intra run must be deterministic across reps"),
        }
    }
    IntraPoint {
        intra_jobs,
        digest: digest.expect("at least one rep"),
        wall_ms: best_ms,
    }
}

/// The `repro intra` sweep: the scenario timed at each job count, with
/// every digest checked identical to the sequential reference before
/// returning — the table never prints a speedup bought with drift.
///
/// # Panics
///
/// Panics if any job count's digest diverges from `intra_jobs = 1`.
pub fn intra_sweep(job_counts: &[usize]) -> Vec<IntraPoint> {
    let points: Vec<IntraPoint> = job_counts.iter().map(|&j| intra_point(j)).collect();
    if let Some(reference) = points.iter().find(|p| p.intra_jobs <= 1) {
        for p in &points {
            assert_eq!(
                p.digest, reference.digest,
                "intra-jobs {} drifted from the sequential reference",
                p.intra_jobs
            );
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic() {
        assert_eq!(intra_digest(1), intra_digest(1));
    }

    #[test]
    fn digests_are_identical_across_job_counts() {
        let reference = intra_digest(1);
        for jobs in [2, 4] {
            assert_eq!(
                intra_digest(jobs),
                reference,
                "intra-jobs {jobs} drifted from the sequential engine"
            );
        }
        // The scenario actually exercises the engine: every slot serves
        // and the warm path fires. The timed pass runs after the warmup
        // brought every routed expert resident, so it sees no cold
        // activations by design.
        assert_eq!(reference.waves, INTRA_WAVES);
        assert_eq!(reference.served, INTRA_WAVES * INTRA_WAVE_SLOTS);
        assert_eq!(reference.dropped, 0);
        assert_eq!(reference.expert_misses, 0, "timed pass runs warmed");
        assert!(reference.expert_hits > 0, "warm activations exercised");
    }

    #[test]
    fn cold_pass_exercises_the_miss_path() {
        // A fresh cluster's first pass over the wave list must fault
        // experts in: the warmup exists precisely because this cold
        // pass is not representative of steady-state serving.
        let mut cluster = build_cluster(1);
        let cold = digest_outcomes(&serve_all(&mut cluster, &intra_waves()));
        assert!(cold.expert_misses > 0, "cold activations exercised");
        assert!(cold.expert_hits > 0, "warm activations exercised");
    }
}
