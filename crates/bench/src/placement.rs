//! Placement-policy chaos sweep (`repro -- placement`): reactive vs
//! stats-driven serving under HBM pressure.
//!
//! One fixed scenario, swept over `(policies on/off) × (chaos on/off) ×
//! (load multiplier)`: the paper's CoE-150 expert library on a 2-node
//! cluster whose per-wave working set deliberately exceeds the
//! 36-experts-per-node HBM budget, so plain LRU thrashes — the experts a
//! wave starts with get evicted by the experts it ends with, and every
//! wave re-pays the 13.48 GB DDR→HBM switch for weights it used moments
//! ago. The chaos variant crams both nodes' working sets onto one
//! survivor mid-burst, which is when the memory wall bites hardest.
//!
//! The policy rows turn on the [`sn_coe::placement`] bundle: router
//! statistics feed a predictive prefetcher (staging evicted-but-hot
//! experts at wave boundaries, charged through the memsim DMA model), a
//! placement policy (hot-expert replication + cold spreading on a
//! cadence), and a paged KV cache under the shared HBM budget. The
//! claim the table carries: policies **on** shows a higher expert
//! hit rate and a lower switch-bound phase fraction (classified by
//! `sn-profile` roofline attribution) than policies **off** on the same
//! scenario — the speculation itself never changes served outputs (see
//! the property tests in `sn-coe`).
//!
//! Every sweep point is a pure function of `(seed, case)` — fresh
//! cluster, fresh chaos schedule, fresh policy bundle — so the sweep
//! routes through the ordered-merge engine with the usual bit-for-bit
//! `parallel == sequential` contract at any `--jobs` count.

use sn_arch::{Bytes, Flops, NodeSpec, TimeSecs};
use sn_coe::scheduler::ArrivalPattern;
use sn_coe::{
    ClassPolicy, CoeCluster, ExpertLibrary, PagedKvConfig, PlacementPolicy, PolicyConfig,
    PrefetchPolicy, RateLimit, ServingPolicies, SloClass, TenancyConfig, TenancyReport, TenantSpec,
};
use sn_faults::{ChaosSchedule, FaultSite, FaultSpec};
use sn_profile::{Bound, MachineProfile, PhaseKind, PhaseSample, ServeAttribution};

/// Seed shared by every sweep point.
pub const SWEEP_SEED: u64 = 0x51ac;

/// Nodes the cluster starts with. Two is the smallest cluster where
/// placement (replication, cold moves) can act at all, and it keeps the
/// per-node expert count (75) far above the ~36-expert HBM budget.
pub const SWEEP_NODES: usize = 2;

/// Experts in the library — the paper's CoE-150 composition (§I).
pub const SWEEP_EXPERTS: usize = 150;

/// Prompt length of every tenant request.
pub const SWEEP_PROMPT_TOKENS: usize = 512;

/// Decode slots per node per wave. 72 slots across 150 experts draw
/// ~45+ distinct experts per node-wave: well past the ~36-expert HBM
/// budget, so the reactive path thrashes and the policies have
/// something to win.
pub const SWEEP_SLOTS_PER_NODE: usize = 72;

/// Baseline interactive requests at multiplier 1.0.
pub const BASE_INTERACTIVE_REQUESTS: usize = 96;

/// Baseline batch requests at multiplier 1.0.
pub const BASE_BATCH_REQUESTS: usize = 32;

/// Offered-load multipliers swept.
pub const SWEEP_LOADS: &[f64] = &[1.0, 2.0];

/// The chaos outage: node 1 crashes during the arrival burst and its
/// whole working set crams onto node 0.
pub const OUTAGE_NODE: usize = 1;

/// Outage window start, in model time. The waves of this scenario are
/// big (~1 s of model time each), so the chaos windows span several
/// waves — a sub-wave outage would open and close between two
/// boundaries and never be observed.
pub const OUTAGE_START: TimeSecs = TimeSecs::from_secs(0.2);

/// Outage window end: the crashed node restores here (≈ five waves of
/// single-survivor serving, long enough that every active expert
/// re-homes onto node 0).
pub const OUTAGE_END: TimeSecs = TimeSecs::from_secs(6.0);

/// End of the degraded-fabric window (congestion outlives the crash:
/// the restored node re-fills HBM over the same links).
pub const FABRIC_WINDOW_END: TimeSecs = TimeSecs::from_secs(10.0);

/// One cell of the sweep grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementCase {
    /// Whether the serving-policy bundle is enabled.
    pub policies: bool,
    /// Whether the chaos schedule is applied.
    pub chaos: bool,
    /// Offered-load multiplier.
    pub load: f64,
}

/// One row of the placement sweep table.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementSweepPoint {
    /// The grid cell this row evaluated.
    pub case: PlacementCase,
    /// Requests submitted across all tenants.
    pub submitted: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests shed, all reasons.
    pub shed: usize,
    /// Serving waves executed.
    pub waves: usize,
    /// Model time to drain the scenario.
    pub makespan: TimeSecs,
    /// Expert activations served from HBM.
    pub expert_hits: usize,
    /// Expert activations that paid the DDR→HBM switch.
    pub expert_misses: usize,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
    /// Cumulative demand switch time across all waves.
    pub switch_time: TimeSecs,
    /// Share of the serve classified DDR-/switching-bound by the
    /// `sn-profile` roofline attribution.
    pub switch_bound_fraction: f64,
    /// Speculative loads issued (0 with policies off).
    pub prefetch_issued: u64,
    /// Speculations claimed by demand activations.
    pub prefetch_hits: u64,
    /// `prefetch_hits / prefetch_issued`.
    pub prefetch_accuracy: f64,
    /// Bytes staged for experts that expired unused.
    pub prefetch_wasted: Bytes,
    /// Hot-expert replicas created.
    pub experts_replicated: u64,
    /// Cold experts re-homed off hot nodes.
    pub cold_moves: u64,
    /// KV pages allocated into HBM.
    pub kv_pages_in: u64,
    /// KV pages evicted under budget pressure.
    pub kv_pages_evicted: u64,
    /// Evicted live pages that refilled DDR→HBM.
    pub kv_refaults: u64,
    /// Background-transfer time the waves could not hide.
    pub transfer_exposed: TimeSecs,
    /// Whether `submitted = completed + shed` held exactly.
    pub conserved: bool,
}

/// The full sweep grid, in fixed order: for each load, the four
/// `(policies, chaos)` corners with the reactive baseline first.
pub fn sweep_grid() -> Vec<PlacementCase> {
    let mut grid = Vec::new();
    for &load in SWEEP_LOADS {
        for &(policies, chaos) in &[(false, false), (false, true), (true, false), (true, true)] {
            grid.push(PlacementCase {
                policies,
                chaos,
                load,
            });
        }
    }
    grid
}

/// The class policies and engine tuning every point shares. Interactive
/// requests are multi-chunk here (unlike the `tenants` sweep) so wave
/// residents re-activate their experts wave after wave — exactly the
/// access pattern LRU thrash punishes and prefetch rescues.
pub fn sweep_config() -> TenancyConfig {
    TenancyConfig {
        seed: SWEEP_SEED,
        prompt_tokens: SWEEP_PROMPT_TOKENS,
        wave_tokens: 8,
        per_node_slots: SWEEP_SLOTS_PER_NODE,
        interactive: ClassPolicy {
            queue_cap: 512,
            deadline: TimeSecs::from_secs(30.0),
            slo_bound: TimeSecs::from_secs(2.0),
            chunks: 4,
        },
        batch: ClassPolicy {
            queue_cap: 512,
            deadline: TimeSecs::from_secs(120.0),
            slo_bound: TimeSecs::from_secs(30.0),
            chunks: 6,
        },
        max_waves: 100_000,
    }
}

/// The tenant mix at a given load multiplier: a steady interactive
/// stream, a bursty interactive tenant whose burst train peaks inside
/// the outage window, and a batch backlog that lands at t = 0.
pub fn sweep_tenants(load: f64) -> Vec<TenantSpec> {
    let scaled = |base: usize| ((base as f64 * load).round() as usize).max(1);
    vec![
        TenantSpec {
            name: "chat-steady".into(),
            class: SloClass::Interactive,
            pattern: ArrivalPattern::Poisson { rate_rps: 150.0 },
            requests: scaled(BASE_INTERACTIVE_REQUESTS),
            rate_limit: RateLimit::unlimited(),
        },
        TenantSpec {
            name: "chat-bursty".into(),
            class: SloClass::Interactive,
            pattern: ArrivalPattern::BurstTrain {
                size: 16,
                period: TimeSecs::from_millis(50.0),
            },
            requests: scaled(BASE_INTERACTIVE_REQUESTS),
            rate_limit: RateLimit::unlimited(),
        },
        TenantSpec {
            name: "lab-backlog".into(),
            class: SloClass::Batch,
            pattern: ArrivalPattern::Burst,
            requests: scaled(BASE_BATCH_REQUESTS),
            rate_limit: RateLimit::unlimited(),
        },
    ]
}

/// The chaos schedule the chaos rows replay: [`OUTAGE_NODE`] crashes at
/// [`OUTAGE_START`] and restores at [`OUTAGE_END`], while the socket
/// fabric runs degraded until [`FABRIC_WINDOW_END`].
pub fn sweep_chaos(seed: u64) -> ChaosSchedule {
    ChaosSchedule::new(seed)
        .with_outage(&[OUTAGE_NODE], OUTAGE_START, Some(OUTAGE_END))
        .with_window(
            FaultSite::SocketLink,
            FaultSpec {
                fail_rate: 0.10,
                slow_rate: 0.25,
                slow_factor: 1.5,
            },
            OUTAGE_START,
            FABRIC_WINDOW_END,
        )
}

/// The policy bundle the policy rows enable. Placement is the heavy
/// hitter: the chaos outage re-homes every active expert onto the
/// survivor, and without a policy the cluster *stays* lopsided after
/// the crashed node restores — so cold moves aggressively spread the
/// pile-up back out and replicas put the hottest experts on both
/// nodes. The prefetcher stages a handful of evicted-but-hot experts
/// per wave boundary, and the paged KV cache models decode context
/// under a 32 GiB slice of the HBM budget.
pub fn sweep_policy_config() -> PolicyConfig {
    PolicyConfig {
        ewma_alpha: 0.25,
        prefetch: Some(PrefetchPolicy {
            threshold: 0.35,
            max_per_wave: 8,
        }),
        placement: Some(PlacementPolicy {
            hot_threshold: 0.5,
            max_replicas_per_eval: 4,
            max_cold_moves: 12,
        }),
        placement_cadence: 4,
        kv: Some(PagedKvConfig {
            page_tokens: 16,
            page_bytes: Bytes::from_mib(8),
            budget: Bytes::from_gib(32),
        }),
    }
}

/// Runs the full scenario report for one `(seed, case)` point. With
/// `case.policies` off this is exactly `serve_tenants` — the reactive
/// baseline the policy rows are measured against.
///
/// # Panics
///
/// Panics if the expert library cannot be placed on the starting
/// cluster (a configuration bug, not a runtime condition).
pub fn placement_report_seeded(seed: u64, case: PlacementCase) -> TenancyReport {
    let mut cluster = CoeCluster::new(
        NodeSpec::sn40l_node(),
        SWEEP_NODES,
        ExpertLibrary::new(SWEEP_EXPERTS),
        SWEEP_PROMPT_TOKENS,
    )
    .expect("sweep library fits the starting cluster");
    let mut config = sweep_config();
    config.seed = seed;
    let chaos = case.chaos.then(|| sweep_chaos(seed));
    let tenants = sweep_tenants(case.load);
    if case.policies {
        let mut policies = ServingPolicies::new(SWEEP_EXPERTS, sweep_policy_config());
        cluster
            .serve_tenants_with_policies(
                &tenants,
                &config,
                chaos.as_ref(),
                None,
                Some(&mut policies),
            )
            .expect("placement scenario serves")
    } else {
        cluster
            .serve_tenants(&tenants, &config, chaos.as_ref(), None)
            .expect("placement scenario serves")
    }
}

/// Classifies one report's time through the `sn-profile` roofline
/// attribution and returns the switch-bound share: the fraction of the
/// serve bound by the DDR expert-switch path (demand switches plus any
/// exposed background transfers), against decode streaming the rest of
/// the time. Deterministic: a pure function of the report.
pub fn switch_bound_fraction(report: &TenancyReport) -> f64 {
    switch_bound_fraction_for(report, SWEEP_EXPERTS)
}

/// [`switch_bound_fraction`] with an explicit expert-library size, so
/// reports from scenarios other than this sweep's CoE-150 composition
/// (e.g. the surrogate's exact spot checks over the tenants-style grid)
/// classify against their own per-expert switch bytes. The arithmetic
/// is identical — `switch_bound_fraction` is the `SWEEP_EXPERTS` case.
pub fn switch_bound_fraction_for(report: &TenancyReport, experts: usize) -> f64 {
    let machine =
        MachineProfile::from_node(&NodeSpec::sn40l_node()).scale(report.final_nodes.max(1) as f64);
    let expert_bytes = ExpertLibrary::new(experts).expert_bytes();
    let policy = report.policy.unwrap_or_default();
    let switch_time = report.switch_time + policy.transfer_exposed;
    let switch_bytes = expert_bytes.scale(report.expert_misses as f64)
        + expert_bytes.scale(policy.prefetch_issued as f64);
    let serve_time = if report.makespan > switch_time {
        report.makespan - switch_time
    } else {
        TimeSecs::ZERO
    };
    // Decode streams weights from HBM at ~2 ops/byte (§VI-B): model the
    // non-switching remainder as full-rate weight streaming.
    let serve_bytes = machine.hbm_bandwidth * serve_time;
    let attribution = ServeAttribution::from_samples(
        machine,
        vec![
            PhaseSample {
                kind: PhaseKind::Switching,
                time: switch_time,
                flops: Flops::ZERO,
                hbm_bytes: switch_bytes,
                ddr_bytes: switch_bytes,
            },
            PhaseSample {
                kind: PhaseKind::Decode,
                time: serve_time,
                flops: Flops::new(serve_bytes.as_f64() * 2.0),
                hbm_bytes: serve_bytes,
                ddr_bytes: Bytes::ZERO,
            },
        ],
    );
    attribution.bound_fraction(Bound::DdrBandwidth) + attribution.bound_fraction(Bound::Switching)
}

/// Summarizes one sweep point.
pub fn placement_point(case: PlacementCase) -> PlacementSweepPoint {
    placement_point_seeded(SWEEP_SEED, case)
}

/// [`placement_point`] with an explicit seed — the differential tests
/// sweep several seeds to show the parallel/sequential bit-identity is
/// not an artifact of one lucky arrival pattern.
pub fn placement_point_seeded(seed: u64, case: PlacementCase) -> PlacementSweepPoint {
    let report = placement_report_seeded(seed, case);
    let policy = report.policy.unwrap_or_default();
    PlacementSweepPoint {
        case,
        submitted: report.submitted,
        completed: report.records.len(),
        shed: report.shed.len(),
        waves: report.waves,
        makespan: report.makespan,
        expert_hits: report.expert_hits,
        expert_misses: report.expert_misses,
        hit_rate: report.expert_hit_rate(),
        switch_time: report.switch_time,
        switch_bound_fraction: switch_bound_fraction(&report),
        prefetch_issued: policy.prefetch_issued,
        prefetch_hits: policy.prefetch_hits,
        prefetch_accuracy: policy.prefetch_accuracy(),
        prefetch_wasted: policy.prefetch_wasted,
        experts_replicated: policy.experts_replicated,
        cold_moves: policy.cold_moves,
        kv_pages_in: policy.kv_pages_in,
        kv_pages_evicted: policy.kv_pages_evicted,
        kv_refaults: policy.kv_refaults,
        transfer_exposed: policy.transfer_exposed,
        conserved: report.conservation_holds(),
    }
}

/// The full grid sweep, sequentially.
pub fn placement_sweep() -> Vec<PlacementSweepPoint> {
    placement_sweep_jobs(1)
}

/// [`placement_sweep`] fanned across `jobs` worker threads via the
/// ordered-merge engine. Bit-identical to `placement_sweep()` for every
/// `jobs` value: each point builds its own cluster, chaos schedule, and
/// policy bundle.
pub fn placement_sweep_jobs(jobs: usize) -> Vec<PlacementSweepPoint> {
    placement_sweep_seeded_jobs(SWEEP_SEED, jobs)
}

/// [`placement_sweep_jobs`] with an explicit scenario seed.
pub fn placement_sweep_seeded_jobs(seed: u64, jobs: usize) -> Vec<PlacementSweepPoint> {
    let grid = sweep_grid();
    crate::par::ordered_map(jobs, &grid, |_, &case| placement_point_seeded(seed, case))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on(chaos: bool, load: f64) -> PlacementCase {
        PlacementCase {
            policies: true,
            chaos,
            load,
        }
    }

    fn off(chaos: bool, load: f64) -> PlacementCase {
        PlacementCase {
            policies: false,
            chaos,
            load,
        }
    }

    #[test]
    fn points_are_deterministic() {
        let a = placement_point(on(true, 1.0));
        let b = placement_point(on(true, 1.0));
        assert_eq!(a, b, "same case, same row");
    }

    #[test]
    fn every_row_conserves_requests_and_kv_pages() {
        for p in placement_sweep() {
            assert!(p.conserved, "case {:?} leaked requests", p.case);
            assert_eq!(p.submitted, p.completed + p.shed);
            assert!(
                p.kv_pages_in >= p.kv_pages_evicted,
                "case {:?}: more pages evicted than allocated",
                p.case
            );
        }
    }

    #[test]
    fn scenario_pressures_the_hbm_budget() {
        // The quiet baseline already misses heavily (the ~90-expert
        // working set exceeds the ~36-expert per-node residency budget),
        // and the bursty chaos scenario tips it into outright thrash:
        // more cold switches than warm hits, with a substantial share of
        // the serve pinned on the DDR switch path.
        let quiet = placement_point(off(false, 1.0));
        assert!(
            quiet.expert_misses > 100,
            "working set must exceed the residency budget ({} misses)",
            quiet.expert_misses
        );
        let stressed = placement_point(off(true, 2.0));
        assert!(
            stressed.expert_misses > stressed.expert_hits,
            "chaos at 2x load must thrash the baseline ({} hits / {} misses)",
            stressed.expert_hits,
            stressed.expert_misses
        );
        assert!(
            stressed.switch_bound_fraction > 0.25,
            "switch path must be a major fraction ({:.3})",
            stressed.switch_bound_fraction
        );
        assert!(
            stressed.hit_rate < quiet.hit_rate,
            "chaos must cost hit rate ({:.3} vs {:.3})",
            stressed.hit_rate,
            quiet.hit_rate
        );
    }

    #[test]
    fn policies_beat_the_reactive_baseline_under_chaos() {
        // The acceptance criterion: under the bursty-arrival chaos
        // scenario, policies on shows a measurable cold-switch penalty
        // reduction — a higher HBM hit rate and less absolute time on
        // the DDR switch path at every load, and a lower switch-bound
        // share of the serve in the 2x bursty scenario.
        for &load in SWEEP_LOADS {
            let reactive = placement_point(off(true, load));
            let managed = placement_point(on(true, load));
            assert!(
                managed.hit_rate > reactive.hit_rate,
                "load {load}: hit rate {:.3} (on) <= {:.3} (off)",
                managed.hit_rate,
                reactive.hit_rate
            );
            assert!(
                managed.switch_time < reactive.switch_time,
                "load {load}: switch time {} (on) >= {} (off)",
                managed.switch_time,
                reactive.switch_time
            );
            assert!(
                managed.makespan < reactive.makespan,
                "load {load}: makespan {} (on) >= {} (off)",
                managed.makespan,
                reactive.makespan
            );
            assert!(managed.prefetch_issued > 0);
            assert!(managed.prefetch_hits > 0);
        }
        // Fraction-of-serve attribution win on the heaviest bursty case
        // (at 1x both numerator and denominator shrink, so the share is
        // roughly flat; at 2x the switch share itself drops).
        let reactive = placement_point(off(true, 2.0));
        let managed = placement_point(on(true, 2.0));
        assert!(
            managed.switch_bound_fraction < reactive.switch_bound_fraction,
            "2x: switch-bound {:.3} (on) >= {:.3} (off)",
            managed.switch_bound_fraction,
            reactive.switch_bound_fraction
        );
    }

    #[test]
    fn policy_rows_report_policy_activity_and_baseline_rows_do_not() {
        let managed = placement_point(on(false, 1.0));
        assert!(managed.prefetch_issued > 0);
        assert!(managed.kv_pages_in > 0);
        let reactive = placement_point(off(false, 1.0));
        assert_eq!(reactive.prefetch_issued, 0);
        assert_eq!(reactive.kv_pages_in, 0);
        assert_eq!(reactive.experts_replicated, 0);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        let seq = placement_sweep_jobs(1);
        let par = placement_sweep_jobs(3);
        assert_eq!(seq, par, "ordered-merge contract");
    }
}
