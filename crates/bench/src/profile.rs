//! Profiled replay of the Figure 12 serving point (`repro --profile`) and
//! the continuous-benchmark snapshot (`repro --bench-json`).
//!
//! [`profiled_fig12_run`] serves several same-seed batches on one SN40L
//! node with tracing *and* SLO tracking attached, then attributes the
//! last batch against the node's roofline — the per-phase
//! compute/HBM/DDR classification of §V-B/§VI-B, plus the sliding-window
//! latency/TTFT/throughput dashboard.
//!
//! [`bench_snapshot`] folds the tracked key figures — Figure 1 switching
//! fractions, the Figure 12 anchor point, Table III speedups, phase
//! attribution, counters, and SLO percentiles — into a
//! [`BenchSnapshot`] with per-metric tolerances — including the online
//! serving sweep from [`crate::serve`]. `scripts/bench_check.sh`
//! compares a fresh snapshot against the committed `BENCH_PR5.json`
//! baseline and fails CI on any out-of-tolerance drift. The snapshot's
//! metric runs fan across worker threads ([`bench_snapshot_jobs`]) yet
//! assemble in fixed order, so the JSON is byte-identical at any job
//! count.

use crate::experiments::{self, PROMPT_TOKENS};
use sn_arch::NodeSpec;
use sn_coe::{ExpertLibrary, PromptGenerator, SambaCoeNode, ServeReport};
use sn_profile::{
    request_latency_quantiles, BenchSnapshot, ServeAttribution, SloConfig, SloSnapshot,
};
use sn_trace::{Counter, Tracer};

/// Output tokens per prompt at the Figure 12 operating point.
pub const OUTPUT_TOKENS: usize = 20;

/// Output of one profiled serving run.
#[derive(Debug, Clone)]
pub struct ProfiledRun {
    /// The last batch's report, with metrics and SLO snapshot attached.
    pub report: ServeReport,
    /// Roofline attribution of the last batch.
    pub attribution: ServeAttribution,
    /// Batches served into the SLO window.
    pub batches: usize,
}

impl ProfiledRun {
    /// The SLO snapshot the run ended on.
    ///
    /// # Panics
    ///
    /// Never in practice: [`profiled_fig12_run`] always attaches a
    /// tracker and serves at least one batch.
    pub fn slo(&self) -> &SloSnapshot {
        self.report.slo.as_ref().expect("SLO tracker attached")
    }
}

/// Replays the Figure 12 SN40L point (`experts` experts, batch size
/// `batch`, 20 output tokens) for `batches` same-seed batches with
/// tracing and SLO tracking enabled, then attributes the final batch.
/// Deterministic: same parameters, identical attribution and snapshot.
///
/// # Panics
///
/// Panics when the expert library exceeds node DDR (past the Figure 12
/// capacity wall).
pub fn profiled_fig12_run(experts: usize, batch: usize, batches: usize) -> ProfiledRun {
    let library = ExpertLibrary::new(experts);
    let mut node = SambaCoeNode::new(NodeSpec::sn40l_node(), library, PROMPT_TOKENS)
        .with_tracer(Tracer::enabled())
        .with_slo(SloConfig::default());
    let mut gen = PromptGenerator::new(0x5eed, PROMPT_TOKENS);
    let batches = batches.max(1);
    let mut report = None;
    for _ in 0..batches {
        report = Some(node.serve_batch(&gen.batch(batch), OUTPUT_TOKENS));
    }
    let report = report.expect("at least one batch");
    let attribution = node.profile(&report, OUTPUT_TOKENS);
    ProfiledRun {
        report,
        attribution,
        batches,
    }
}

/// Stable dotted-key segment from a display name ("DGX A100" → "dgx-a100").
fn slug(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') && !out.is_empty() {
            out.push('-');
        }
    }
    out.trim_end_matches('-').to_string()
}

/// One independent data product feeding the snapshot — the unit of
/// fan-out for [`bench_snapshot_jobs`]. Each product is a pure function
/// of the model, so the products can be computed in any order (or on
/// any thread) and assembled sequentially afterwards.
enum SnapshotTask {
    Fig1,
    Fig12,
    Table3,
    Profiled,
    SweepPoint(f64),
    PlacementPoint(crate::placement::PlacementCase),
    Surrogate,
}

/// The result of one [`SnapshotTask`].
enum SnapshotPart {
    Fig1(Vec<(sn_coe::Platform, sn_coe::LatencyBreakdown)>),
    Fig12(Vec<experiments::Fig12Point>),
    Table3(Vec<experiments::Table3Row>),
    Profiled(Box<ProfiledRun>),
    SweepPoint(crate::serve::ServeSweepPoint),
    PlacementPoint(Box<crate::placement::PlacementSweepPoint>),
    Surrogate(Box<crate::surrogate::SurrogateSuite>),
}

/// Builds the tracked-metric snapshot for the continuous-benchmark
/// harness: model figures at a 2% tolerance, event counters exact, SLO
/// and attribution numbers at 2%, bottleneck classifications as exact
/// text. Purely deterministic — wall-clock `info` entries are added by
/// the caller (`repro --bench-json`), never here.
pub fn bench_snapshot() -> BenchSnapshot {
    bench_snapshot_jobs(1)
}

/// [`bench_snapshot`] with its independent metric runs (Figure 1,
/// Figure 12, Table III, the profiled serving run, and each point of
/// the online sweep) fanned across `jobs` worker threads. Assembly
/// stays sequential, so the snapshot JSON is byte-identical for every
/// `jobs` value — `scripts/bench_check.sh` holds under parallelism.
pub fn bench_snapshot_jobs(jobs: usize) -> BenchSnapshot {
    bench_snapshot_suite_jobs(jobs).0
}

/// [`bench_snapshot_jobs`] also returning the surrogate suite the
/// snapshot's gate metrics came from, so `repro --bench-json` can
/// record prediction wall-clock info rows without running the anchors
/// twice.
pub fn bench_snapshot_suite_jobs(
    jobs: usize,
) -> (BenchSnapshot, Box<crate::surrogate::SurrogateSuite>) {
    let mut tasks = vec![
        SnapshotTask::Fig1,
        SnapshotTask::Fig12,
        SnapshotTask::Table3,
        SnapshotTask::Profiled,
    ];
    tasks.extend(
        crate::serve::SWEEP_RATES
            .iter()
            .map(|&r| SnapshotTask::SweepPoint(r)),
    );
    // The placement acceptance pair: reactive vs managed serving on the
    // bursty 2x chaos scenario (the headline hit-rate / switch-bound
    // deltas of `repro placement`).
    for policies in [false, true] {
        tasks.push(SnapshotTask::PlacementPoint(
            crate::placement::PlacementCase {
                policies,
                chaos: true,
                load: 2.0,
            },
        ));
    }
    // The surrogate suite: exact anchors + fit + 480-cell predicted
    // grid + seeded exact spot checks. Runs single-threaded inside its
    // task (its own fan-out would nest thread pools); the suite is
    // byte-identical at any job count either way.
    tasks.push(SnapshotTask::Surrogate);
    let mut fig1 = None;
    let mut fig12 = None;
    let mut table3 = None;
    let mut run = None;
    let mut points = Vec::with_capacity(crate::serve::SWEEP_RATES.len());
    let mut placement_points = Vec::new();
    let mut suite = None;
    for part in crate::par::ordered_map(jobs, &tasks, |_, task| match task {
        SnapshotTask::Fig1 => SnapshotPart::Fig1(experiments::fig1()),
        SnapshotTask::Fig12 => SnapshotPart::Fig12(experiments::fig12(8)),
        SnapshotTask::Table3 => SnapshotPart::Table3(experiments::table3()),
        SnapshotTask::Profiled => SnapshotPart::Profiled(Box::new(profiled_fig12_run(150, 8, 4))),
        SnapshotTask::SweepPoint(rate) => {
            SnapshotPart::SweepPoint(crate::serve::serve_point(*rate))
        }
        SnapshotTask::PlacementPoint(case) => {
            SnapshotPart::PlacementPoint(Box::new(crate::placement::placement_point(*case)))
        }
        SnapshotTask::Surrogate => {
            SnapshotPart::Surrogate(Box::new(crate::surrogate::surrogate_suite(1)))
        }
    }) {
        match part {
            SnapshotPart::Fig1(v) => fig1 = Some(v),
            SnapshotPart::Fig12(v) => fig12 = Some(v),
            SnapshotPart::Table3(v) => table3 = Some(v),
            SnapshotPart::Profiled(v) => run = Some(*v),
            // ordered_map keeps input order, so points land rate-sorted.
            SnapshotPart::SweepPoint(p) => points.push(p),
            SnapshotPart::PlacementPoint(p) => placement_points.push(*p),
            SnapshotPart::Surrogate(s) => suite = Some(s),
        }
    }
    let suite = suite.expect("surrogate task ran");
    let (fig1, fig12, table3, run) = (
        fig1.expect("fig1 task ran"),
        fig12.expect("fig12 task ran"),
        table3.expect("table3 task ran"),
        run.expect("profiled task ran"),
    );

    let mut snap = BenchSnapshot::new();
    snap.push_info(
        "operating_point",
        "150 experts, BS=8, 20 output tokens, 1024 prompt tokens, seed 0x5eed",
    );

    // Figure 1: per-platform switching fraction (the memory-wall bar chart).
    for (platform, b) in fig1 {
        snap.push_num(
            &format!("fig1.{}.switching_fraction", slug(platform.name())),
            b.switching_fraction(),
            "fraction",
            0.02,
        );
    }

    // Figure 12 anchor: 150 experts, BS=8 totals and the headline speedup.
    let anchor = fig12
        .into_iter()
        .find(|p| p.experts == 150)
        .expect("150 experts is in the sweep");
    let sn = anchor.sn40l.expect("SN40L holds 150 experts");
    let a100 = anchor.dgx_a100.expect("A100 holds 150 experts");
    let h100 = anchor.dgx_h100.expect("H100 holds 150 experts");
    snap.push_num("fig12.bs8.sn40l_ms", sn.as_millis(), "ms", 0.02);
    snap.push_num("fig12.bs8.dgx_a100_ms", a100.as_millis(), "ms", 0.02);
    snap.push_num("fig12.bs8.dgx_h100_ms", h100.as_millis(), "ms", 0.02);
    snap.push_num("fig12.bs8.speedup_vs_a100", a100 / sn, "x", 0.02);

    // Table III speedups.
    for r in table3 {
        let key = slug(r.metric);
        snap.push_num(&format!("table3.{key}.vs_a100"), r.vs_a100, "x", 0.02);
        snap.push_num(&format!("table3.{key}.vs_h100"), r.vs_h100, "x", 0.02);
    }

    // Profiled serving run: end-to-end figures, attribution, counters, SLO.
    snap.push_num("serve.total_ms", run.report.total().as_millis(), "ms", 0.02);
    snap.push_num(
        "serve.switching_fraction",
        run.report.switching_fraction(),
        "fraction",
        0.02,
    );
    for phase in &run.attribution.phases {
        let name = phase.kind.name();
        snap.push_num(
            &format!("attribution.{name}.fraction"),
            phase.fraction,
            "fraction",
            0.02,
        );
        snap.push_text(&format!("attribution.{name}.bound"), phase.bound.name());
    }
    snap.push_num(
        "attribution.decode.hbm_utilization",
        run.attribution
            .phase(sn_profile::PhaseKind::Decode)
            .expect("decode sampled")
            .hbm_utilization,
        "fraction",
        0.02,
    );
    snap.push_num(
        "attribution.switching.ddr_utilization",
        run.attribution
            .phase(sn_profile::PhaseKind::Switching)
            .expect("switching sampled")
            .ddr_utilization,
        "fraction",
        0.02,
    );

    let metrics = run.report.metrics.as_ref().expect("tracer attached");
    for counter in [
        Counter::PromptsServed,
        Counter::ExpertHits,
        Counter::ExpertMisses,
        Counter::KernelLaunches,
    ] {
        snap.push_num(
            &format!("counters.{}", counter.name()),
            metrics.counter(counter) as f64,
            "count",
            0.0,
        );
    }
    let q = request_latency_quantiles(metrics).expect("requests recorded");
    snap.push_num("request.p50_ns", q.p50_ns as f64, "ns", 0.0);
    snap.push_num("request.p99_ns", q.p99_ns as f64, "ns", 0.0);

    let slo = run.slo();
    snap.push_num(
        "slo.batch_latency_p50_ms",
        slo.batch_latency_p50.as_millis(),
        "ms",
        0.02,
    );
    snap.push_num(
        "slo.batch_latency_p99_ms",
        slo.batch_latency_p99.as_millis(),
        "ms",
        0.02,
    );
    snap.push_num("slo.ttft_p50_ms", slo.ttft_p50.as_millis(), "ms", 0.02);
    snap.push_num("slo.tokens_per_sec", slo.tokens_per_sec, "tokens/s", 0.02);
    snap.push_num("slo.hbm_utilization", slo.hbm_utilization, "fraction", 0.02);
    snap.push_num("slo.ddr_utilization", slo.ddr_utilization, "fraction", 0.02);

    // Online serving sweep: one latency/throughput pair per offered rate,
    // plus the saturation knee. Deterministic seeded arrivals keep the 2%
    // tolerance honest; wave counts are exact integers.
    for p in &points {
        let key = format!("serve_online.rps{:.0}", p.offered_rps);
        snap.push_num(
            &format!("{key}.latency_p95_ms"),
            p.latency_p95.as_millis(),
            "ms",
            0.02,
        );
        snap.push_num(
            &format!("{key}.tokens_per_sec"),
            p.tokens_per_sec,
            "tokens/s",
            0.02,
        );
        snap.push_num(&format!("{key}.waves"), p.waves as f64, "waves", 0.0);
    }
    match crate::serve::knee_rps(&points) {
        Some(knee) => snap.push_num("serve_online.knee_rps", knee, "rps", 0.0),
        None => snap.push_text("serve_online.knee_rps", "none"),
    }

    // Placement-policy acceptance pair: the managed row must keep its
    // hit-rate and switch-bound edge over the reactive row (the exact
    // event counts are deterministic, so they ride at zero tolerance).
    for p in &placement_points {
        let key = if p.case.policies {
            "placement.chaos2x.managed"
        } else {
            "placement.chaos2x.reactive"
        };
        snap.push_num(&format!("{key}.hit_rate"), p.hit_rate, "fraction", 0.02);
        snap.push_num(
            &format!("{key}.switch_bound_fraction"),
            p.switch_bound_fraction,
            "fraction",
            0.02,
        );
        snap.push_num(
            &format!("{key}.makespan_ms"),
            p.makespan.as_millis(),
            "ms",
            0.02,
        );
        snap.push_num(
            &format!("{key}.prefetch_issued"),
            p.prefetch_issued as f64,
            "count",
            0.0,
        );
        snap.push_num(
            &format!("{key}.experts_replicated"),
            p.experts_replicated as f64,
            "count",
            0.0,
        );
        snap.push_num(
            &format!("{key}.cold_moves"),
            p.cold_moves as f64,
            "count",
            0.0,
        );
        snap.push_num(
            &format!("{key}.kv_pages_evicted"),
            p.kv_pages_evicted as f64,
            "count",
            0.0,
        );
    }

    // Surrogate drift gate: the worst spot-check relative error per
    // metric rides as a tracked number whose tolerance is the committed
    // budget, and the pass/fail verdict as exact text — a surrogate
    // regression fails `bench_check.sh` like any other metric drift.
    for (m, name) in sn_surrogate::METRIC_NAMES.iter().enumerate() {
        snap.push_num(
            &format!("surrogate.err.{name}"),
            suite.max_errors[m],
            "relerr",
            crate::surrogate::ERROR_BUDGETS[m],
        );
    }
    snap.push_num(
        "surrogate.grid.points",
        suite.predictions.len() as f64,
        "count",
        0.0,
    );
    snap.push_num(
        "surrogate.anchors",
        suite.anchors.len() as f64,
        "count",
        0.0,
    );
    snap.push_num(
        "surrogate.spot_checks",
        suite.spots.len() as f64,
        "count",
        0.0,
    );
    snap.push_text("surrogate.gate", if suite.gate { "pass" } else { "fail" });
    (snap, suite)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_profile::{Bound, MetricValue, PhaseKind};

    #[test]
    fn profiled_run_matches_paper_classifications() {
        let run = profiled_fig12_run(150, 8, 2);
        let a = &run.attribution;
        assert_eq!(
            a.phase(PhaseKind::Switching).unwrap().bound,
            Bound::DdrBandwidth,
            "switching is DDR-bandwidth-bound (§V-B)"
        );
        assert_eq!(
            a.phase(PhaseKind::Decode).unwrap().bound,
            Bound::HbmBandwidth,
            "decode is HBM-bandwidth-bound (§VI-B)"
        );
        assert_eq!(
            a.phase(PhaseKind::Prefill).unwrap().bound,
            Bound::Compute,
            "fused prefill sits on the roofline ceiling (§VI-A)"
        );
        let slo = run.slo();
        assert_eq!(slo.window_batches, 2);
        assert!(slo.batch_latency_p50 <= slo.batch_latency_p99);
        assert!(slo.tokens_per_sec > 0.0);
    }

    #[test]
    fn profiled_run_is_deterministic() {
        let a = profiled_fig12_run(150, 8, 2);
        let b = profiled_fig12_run(150, 8, 2);
        assert_eq!(a.report, b.report);
        assert_eq!(a.attribution, b.attribution);
    }

    #[test]
    fn snapshot_is_deterministic_and_self_consistent() {
        let a = bench_snapshot();
        let b = bench_snapshot();
        assert_eq!(a.to_json(), b.to_json(), "byte-identical snapshots");
        assert!(a.compare(&b).passed(), "self-comparison is clean");
        // The paper's headline classifications are tracked as exact text.
        assert_eq!(
            a.metric("attribution.switching.bound").map(|m| &m.value),
            Some(&MetricValue::Text("ddr-bandwidth-bound".to_string()))
        );
        assert_eq!(
            a.metric("attribution.decode.bound").map(|m| &m.value),
            Some(&MetricValue::Text("hbm-bandwidth-bound".to_string()))
        );
        // Round-trips through its own JSON.
        let parsed = BenchSnapshot::from_json(&a.to_json()).expect("parses");
        assert_eq!(a, parsed);
    }

    #[test]
    fn slug_is_stable() {
        assert_eq!(slug("DGX A100"), "dgx-a100");
        assert_eq!(slug("SN40L"), "sn40l");
        assert_eq!(slug("Decode tokens/sec (BS=1)"), "decode-tokens-sec-bs-1");
    }
}
