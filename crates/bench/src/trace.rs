//! Traced replay of the Figure 12 latency experiment (`repro --trace`).
//!
//! One run threads a single [`Tracer`] through every simulation layer and
//! serializes the result as a Chrome-trace JSON timeline (loadable in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`):
//!
//! - **rdusim** — a decoder-like fused kernel is mapped and simulated on
//!   the SN40L tile mesh, recording PCU/PMU occupancy and RDN congestion
//!   (the per-kernel detail the analytic serving model abstracts away);
//! - **memsim** — one expert-sized DDR→HBM DMA transfer, the §V-B
//!   model-switch route;
//! - **runtime** — kernel-launch spans from the node executor, emitted as
//!   a side effect of serving;
//! - **coe** — the Figure 12-style SN40L serving run itself: router span,
//!   expert switch spans, and per-prompt execution spans.
//!
//! The run is deterministic: same parameters, byte-identical JSON.

use crate::experiments::PROMPT_TOKENS;
use sn_arch::{NodeSpec, RduChipSpec};
use sn_coe::{ExpertLibrary, PromptGenerator, SambaCoeNode, ServeReport};
use sn_memsim::{DmaEngine, Route};
use sn_rdusim::{simulate_kernel_traced, StageReq};
use sn_trace::Tracer;

/// Output of one traced serving run.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// The serve report, with the aggregated [`sn_trace::MetricsReport`]
    /// attached in its `metrics` field.
    pub report: ServeReport,
    /// Chrome-trace JSON timeline covering the rdusim, memsim, runtime,
    /// and coe tracks.
    pub trace_json: String,
}

/// A decode layer's stage list (norm, qkv, attention, mlp up/down) —
/// the same shape the tile-mapping tests use.
fn decoder_stages() -> Vec<StageReq> {
    [(4, 3), (12, 6), (8, 4), (12, 6), (12, 6)]
        .iter()
        .map(|&(pcus, pmus)| StageReq {
            pcus,
            pmus,
            traffic: 16,
        })
        .collect()
}

/// Replays one Figure 12 SN40L point (`experts` experts, batch size
/// `batch`, 20 output tokens) with tracing enabled, plus one traced
/// kernel simulation and one traced expert-switch DMA so the timeline
/// demonstrates every layer.
///
/// # Panics
///
/// Panics when the expert library exceeds node DDR (past the Figure 12
/// sweep's capacity wall) — use counts from
/// [`crate::experiments::expert_sweep`] below the SN40L OOM point.
pub fn traced_fig12_run(experts: usize, batch: usize) -> TracedRun {
    let tracer = Tracer::enabled();
    let node_spec = NodeSpec::sn40l_node();

    // Dataflow layer: map and simulate one fused decoder layer on the mesh.
    simulate_kernel_traced(
        &RduChipSpec::sn40l().tile,
        &decoder_stages(),
        2,
        "decoder-layer",
        &tracer,
    );

    // Memory layer: one expert-sized copy over the model-switch route.
    let library = ExpertLibrary::new(experts);
    let dma = DmaEngine::new(&node_spec.socket).with_tracer(tracer.clone());
    dma.transfer(Route::DDR_TO_HBM, library.expert_bytes());

    // Serving layer (runtime events come along for free via the shared
    // tracer inside the node's executor and CoE runtime).
    let mut node = SambaCoeNode::new(node_spec, library, PROMPT_TOKENS).with_tracer(tracer.clone());
    let prompts = PromptGenerator::new(0x5eed, PROMPT_TOKENS).batch(batch);
    let report = node.serve_batch(&prompts, 20);

    TracedRun {
        report,
        trace_json: tracer.chrome_trace_json(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_trace::{Counter, Track};

    #[test]
    fn traced_run_covers_every_layer() {
        let run = traced_fig12_run(150, 8);
        let metrics = run.report.metrics.as_ref().expect("tracer attached");
        assert!(metrics.counter(Counter::PcusOccupied) > 0, "rdusim events");
        assert!(metrics.counter(Counter::DmaTransfers) > 0, "memsim events");
        assert!(
            metrics.counter(Counter::KernelLaunches) > 0,
            "runtime events"
        );
        assert_eq!(metrics.counter(Counter::PromptsServed), 8, "coe events");
        for track in [Track::Rdusim, Track::Memsim, Track::Runtime, Track::Coe] {
            assert!(
                run.trace_json.contains(track.name()),
                "timeline misses the {} track",
                track.name()
            );
        }
    }

    #[test]
    fn traced_run_is_deterministic() {
        let a = traced_fig12_run(150, 8);
        let b = traced_fig12_run(150, 8);
        assert_eq!(a.trace_json, b.trace_json, "byte-identical timelines");
    }
}
