//! Running executables with launch-overhead accounting (§IV-D, §VI-A).

use serde::{Deserialize, Serialize};
use sn_arch::{Calibration, NodeSpec, Orchestration, TimeSecs};
use sn_compiler::Executable;

/// Timing breakdown of one execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// End-to-end time.
    pub total: TimeSecs,
    /// Pure kernel execution time.
    pub exec: TimeSecs,
    /// Per-kernel launch overhead (dispatch).
    pub launch: TimeSecs,
    /// One-time program-load cost for distinct kernel configurations.
    pub program_load: TimeSecs,
    /// Number of kernel launches.
    pub launches: usize,
    /// Number of distinct kernel programs.
    pub distinct_programs: usize,
}

impl ExecutionReport {
    /// Fraction of total time spent on launch overheads — the quantity
    /// hardware orchestration attacks (§VI-A).
    pub fn overhead_fraction(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            (self.launch + self.program_load).as_secs() / self.total.as_secs()
        }
    }
}

/// Executes compiled programs on an RDU node.
///
/// Under tensor parallelism, every socket runs the same per-socket
/// executable in lockstep (the graphs are built per-socket and carry
/// AllReduce nodes), so node time equals socket time.
#[derive(Debug, Clone)]
pub struct NodeExecutor {
    node: NodeSpec,
    calib: Calibration,
}

impl NodeExecutor {
    pub fn new(node: NodeSpec, calib: Calibration) -> Self {
        NodeExecutor { node, calib }
    }

    pub fn node(&self) -> &NodeSpec {
        &self.node
    }

    /// Runs the executable once under the given orchestration.
    pub fn run(&self, exe: &Executable, orch: Orchestration) -> ExecutionReport {
        let launches = exe.kernel_count();
        let distinct = exe.distinct_programs();
        let exec = exe.execution_time();
        let launch = self.calib.launch_overhead(orch) * launches as f64;
        let program_load = self.calib.program_load * distinct as f64;
        ExecutionReport {
            total: exec + launch + program_load,
            exec,
            launch,
            program_load,
            launches,
            distinct_programs: distinct,
        }
    }

    /// Runs a decode executable for `steps` autoregressive steps: program
    /// loads amortize across steps, launch overheads repeat.
    pub fn run_decode_loop(
        &self,
        exe: &Executable,
        orch: Orchestration,
        steps: usize,
    ) -> ExecutionReport {
        let one = self.run(exe, orch);
        let exec = one.exec * steps as f64;
        let launch = one.launch * steps as f64;
        ExecutionReport {
            total: exec + launch + one.program_load,
            exec,
            launch,
            program_load: one.program_load,
            launches: one.launches * steps,
            distinct_programs: one.distinct_programs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_compiler::{Compiler, FusionPolicy};
    use sn_models::{build, Phase, TransformerConfig};

    fn exec_llama(phase: Phase, policy: FusionPolicy) -> (Executable, NodeExecutor) {
        let cfg = TransformerConfig::llama2_7b();
        let g = build(&cfg, phase, 1, 8).unwrap();
        let c = Compiler::new(sn_arch::SocketSpec::sn40l(), Calibration::baseline());
        let exe = c.compile(&g, policy).unwrap();
        let node = NodeExecutor::new(NodeSpec::sn40l_node(), Calibration::baseline());
        (exe, node)
    }

    #[test]
    fn fused_decode_layer_count_matches_paper_story() {
        // §VI-B: "the entire decoder layer is fused into a single kernel
        // call" and the model "mostly contains multiple identical decoder
        // layers" so there are virtually no program re-loads.
        let (exe, _) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Spatial);
        // 32 layers + embedding + head kernels.
        assert!(exe.kernel_count() <= 40, "got {} kernels", exe.kernel_count());
        assert!(exe.distinct_programs() <= 5, "got {}", exe.distinct_programs());
    }

    #[test]
    fn ho_beats_so_most_for_decode() {
        let (exe, node) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Spatial);
        let so = node.run(&exe, Orchestration::Software);
        let ho = node.run(&exe, Orchestration::Hardware);
        let decode_gain = so.total / ho.total;
        let (pexe, pnode) = exec_llama(
            Phase::Prefill { prompt_tokens: 4096 },
            FusionPolicy::Spatial,
        );
        let pso = pnode.run(&pexe, Orchestration::Software);
        let pho = pnode.run(&pexe, Orchestration::Hardware);
        let prefill_gain = pso.total / pho.total;
        assert!(decode_gain > 1.2, "decode HO gain {decode_gain:.2}");
        assert!(prefill_gain < 1.15, "prefill HO gain {prefill_gain:.2}");
        assert!(decode_gain > prefill_gain);
    }

    #[test]
    fn decode_latency_is_milliseconds_per_token() {
        // Memory-bound sanity: ~13.5 GB of weights over 16 TB/s of node
        // HBM at 85% is ~1 ms/token.
        let (exe, node) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Spatial);
        let t = node.run(&exe, Orchestration::Hardware).total.as_millis();
        assert!(t > 0.3 && t < 5.0, "decode step {t} ms");
    }

    #[test]
    fn prefill_latency_is_tens_of_milliseconds() {
        let (exe, node) = exec_llama(
            Phase::Prefill { prompt_tokens: 4096 },
            FusionPolicy::Spatial,
        );
        let t = node.run(&exe, Orchestration::Hardware).total.as_millis();
        assert!(t > 3.0 && t < 100.0, "prefill {t} ms");
    }

    #[test]
    fn decode_loop_amortizes_program_loads() {
        let (exe, node) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Spatial);
        let one = node.run(&exe, Orchestration::Hardware);
        let twenty = node.run_decode_loop(&exe, Orchestration::Hardware, 20);
        assert!(twenty.total.as_secs() < one.total.as_secs() * 20.0);
        assert_eq!(twenty.launches, one.launches * 20);
    }

    #[test]
    fn overhead_fraction_is_sane() {
        let (exe, node) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Unfused);
        let so = node.run(&exe, Orchestration::Software);
        assert!(so.overhead_fraction() > 0.5, "unfused SO decode is launch-dominated");
        let ho = node.run(&exe, Orchestration::Hardware);
        assert!(ho.overhead_fraction() < so.overhead_fraction());
    }
}
