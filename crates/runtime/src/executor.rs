//! Running executables with launch-overhead accounting (§IV-D, §VI-A).

use serde::{Deserialize, Serialize};
use sn_arch::{Calibration, NodeSpec, Orchestration, TimeSecs};
use sn_compiler::Executable;
use sn_faults::{FaultDecision, FaultPlan, FaultSite, Recovery, RetryError, RetryPolicy};
use sn_trace::{ArgValue, Counter, Metric, Tracer, Track};
use std::sync::Arc;

/// Timing breakdown of one execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// End-to-end time.
    pub total: TimeSecs,
    /// Pure kernel execution time.
    pub exec: TimeSecs,
    /// Per-kernel launch overhead (dispatch).
    pub launch: TimeSecs,
    /// One-time program-load cost for distinct kernel configurations.
    pub program_load: TimeSecs,
    /// Number of kernel launches.
    pub launches: usize,
    /// Number of distinct kernel programs.
    pub distinct_programs: usize,
}

impl ExecutionReport {
    /// Fraction of total time spent on launch overheads — the quantity
    /// hardware orchestration attacks (§VI-A).
    pub fn overhead_fraction(&self) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            (self.launch + self.program_load).as_secs() / self.total.as_secs()
        }
    }

    /// Stretches every time component by `factor` (an injected
    /// socket-fabric slowdown); launch/program counts are unchanged.
    fn scaled(self, factor: f64) -> ExecutionReport {
        ExecutionReport {
            total: self.total * factor,
            exec: self.exec * factor,
            launch: self.launch * factor,
            program_load: self.program_load * factor,
            ..self
        }
    }
}

/// Executes compiled programs on an RDU node.
///
/// Under tensor parallelism, every socket runs the same per-socket
/// executable in lockstep (the graphs are built per-socket and carry
/// AllReduce nodes), so node time equals socket time.
#[derive(Debug, Clone)]
pub struct NodeExecutor {
    node: NodeSpec,
    calib: Calibration,
    faults: Option<Arc<FaultPlan>>,
    tracer: Tracer,
}

impl NodeExecutor {
    pub fn new(node: NodeSpec, calib: Calibration) -> Self {
        NodeExecutor {
            node,
            calib,
            faults: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer: every run then emits a span on the runtime track
    /// with its launch/program-load split, bumps
    /// [`Counter::KernelLaunches`] / [`Counter::ProgramLoads`], and records
    /// the total in the [`Metric::KernelRun`] histogram. Report timings are
    /// unaffected.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches a fault plan consulted at [`FaultSite::SocketLink`] by the
    /// fault-aware run paths ([`NodeExecutor::try_run`] and
    /// [`NodeExecutor::try_run_decode_loop`]); the plain paths stay
    /// fault-oblivious.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    pub fn node(&self) -> &NodeSpec {
        &self.node
    }

    /// Roofline utilization of one completed [`NodeExecutor::run`]:
    /// attained FLOP rate (the executable's FLOPs over the report's
    /// total, launch overheads included) against what the node's
    /// roofline admits at the executable's operational intensity. 0.0
    /// for FLOP-free or zero-time runs; launch-overhead-dominated runs
    /// score low even when the pure kernel time sits on the roof — that
    /// gap is exactly what hardware orchestration attacks (§VI-A). For
    /// decode loops pass the single-step report, not the loop total
    /// (the executable's FLOPs count one step).
    pub fn roofline_utilization(&self, exe: &Executable, report: &ExecutionReport) -> f64 {
        if report.total.is_zero() {
            return 0.0;
        }
        let attained = sn_arch::FlopRate::from_flops_per_s(
            exe.total_flops().as_f64() / report.total.as_secs(),
        );
        self.node
            .roofline()
            .utilization(attained, exe.total_flops().intensity(exe.total_traffic()))
    }

    /// [`NodeExecutor::run`] without trace recording — shared by the
    /// public paths so decode loops don't double-count their inner run.
    fn run_untraced(&self, exe: &Executable, orch: Orchestration) -> ExecutionReport {
        let launches = exe.kernel_count();
        let distinct = exe.distinct_programs();
        let exec = exe.execution_time();
        let launch = self.calib.launch_overhead(orch) * launches as f64;
        let program_load = self.calib.program_load * distinct as f64;
        ExecutionReport {
            total: exec + launch + program_load,
            exec,
            launch,
            program_load,
            launches,
            distinct_programs: distinct,
        }
    }

    /// Records one completed run into the attached tracer (no-op when
    /// tracing is disabled).
    fn trace_run(&self, name: &str, report: &ExecutionReport) {
        if !self.tracer.is_enabled() {
            return;
        }
        self.tracer
            .count(Counter::KernelLaunches, report.launches as u64);
        self.tracer
            .count(Counter::ProgramLoads, report.distinct_programs as u64);
        self.tracer.observe(Metric::KernelRun, report.total);
        self.tracer.span(
            Track::Runtime,
            name,
            report.total,
            &[
                ("launches", ArgValue::from(report.launches)),
                (
                    "distinct_programs",
                    ArgValue::from(report.distinct_programs),
                ),
                ("exec_us", ArgValue::from(report.exec.as_micros())),
                ("launch_us", ArgValue::from(report.launch.as_micros())),
                (
                    "program_load_us",
                    ArgValue::from(report.program_load.as_micros()),
                ),
            ],
        );
    }

    /// Runs the executable once under the given orchestration.
    pub fn run(&self, exe: &Executable, orch: Orchestration) -> ExecutionReport {
        let report = self.run_untraced(exe, orch);
        self.trace_run(&format!("run:{orch:?}"), &report);
        report
    }

    /// Runs a decode executable for `steps` autoregressive steps: program
    /// loads amortize across steps, launch overheads repeat.
    pub fn run_decode_loop(
        &self,
        exe: &Executable,
        orch: Orchestration,
        steps: usize,
    ) -> ExecutionReport {
        let one = self.run_untraced(exe, orch);
        let exec = one.exec * steps as f64;
        let launch = one.launch * steps as f64;
        let report = ExecutionReport {
            total: exec + launch + one.program_load,
            exec,
            launch,
            program_load: one.program_load,
            launches: one.launches * steps,
            distinct_programs: one.distinct_programs,
        };
        self.trace_run(&format!("decode-loop:{steps}x"), &report);
        report
    }

    /// Consults the fault plan at [`FaultSite::SocketLink`] and drives the
    /// pass through `retry`: a `Fail` draw (dropped peer-to-peer link
    /// mid-AllReduce) wastes the pass and is retried with backoff; a
    /// `Slow` draw stretches the surviving pass. With no plan attached
    /// this returns `report` untouched.
    fn apply_faults(
        &self,
        report: ExecutionReport,
        retry: RetryPolicy,
    ) -> Result<(ExecutionReport, Recovery), RetryError> {
        let Some(plan) = &self.faults else {
            return Ok((report, Recovery::default()));
        };
        let (factor, recovery) = retry.run(|_| match plan.decide(FaultSite::SocketLink) {
            FaultDecision::Ok => Ok(1.0),
            FaultDecision::Slow(factor) => Ok(factor),
            FaultDecision::Fail => Err(report.total),
        })?;
        Ok((report.scaled(factor), recovery))
    }

    /// Fault-aware [`NodeExecutor::run`].
    ///
    /// # Errors
    ///
    /// [`RetryError`] when injected socket failures outlast the retry
    /// budget; the recovery inside carries the time burned.
    pub fn try_run(
        &self,
        exe: &Executable,
        orch: Orchestration,
        retry: RetryPolicy,
    ) -> Result<(ExecutionReport, Recovery), RetryError> {
        self.apply_faults(self.run(exe, orch), retry)
    }

    /// Fault-aware [`NodeExecutor::run_decode_loop`]. The whole decode
    /// loop is one fault-plan consultation: the socket either holds for
    /// the generation or drops it (per-step draws would make long
    /// generations arbitrarily unlikely to finish at any nonzero rate).
    ///
    /// # Errors
    ///
    /// [`RetryError`] when injected socket failures outlast the retry
    /// budget.
    pub fn try_run_decode_loop(
        &self,
        exe: &Executable,
        orch: Orchestration,
        steps: usize,
        retry: RetryPolicy,
    ) -> Result<(ExecutionReport, Recovery), RetryError> {
        self.apply_faults(self.run_decode_loop(exe, orch, steps), retry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_compiler::{Compiler, FusionPolicy};
    use sn_models::{build, Phase, TransformerConfig};

    fn exec_llama(phase: Phase, policy: FusionPolicy) -> (Executable, NodeExecutor) {
        let cfg = TransformerConfig::llama2_7b();
        let g = build(&cfg, phase, 1, 8).unwrap();
        let c = Compiler::new(sn_arch::SocketSpec::sn40l(), Calibration::baseline());
        let exe = c.compile(&g, policy).unwrap();
        let node = NodeExecutor::new(NodeSpec::sn40l_node(), Calibration::baseline());
        (exe, node)
    }

    #[test]
    fn fused_decode_layer_count_matches_paper_story() {
        // §VI-B: "the entire decoder layer is fused into a single kernel
        // call" and the model "mostly contains multiple identical decoder
        // layers" so there are virtually no program re-loads.
        let (exe, _) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Spatial);
        // 32 layers + embedding + head kernels.
        assert!(
            exe.kernel_count() <= 40,
            "got {} kernels",
            exe.kernel_count()
        );
        assert!(
            exe.distinct_programs() <= 5,
            "got {}",
            exe.distinct_programs()
        );
    }

    #[test]
    fn ho_beats_so_most_for_decode() {
        let (exe, node) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Spatial);
        let so = node.run(&exe, Orchestration::Software);
        let ho = node.run(&exe, Orchestration::Hardware);
        let decode_gain = so.total / ho.total;
        let (pexe, pnode) = exec_llama(
            Phase::Prefill {
                prompt_tokens: 4096,
            },
            FusionPolicy::Spatial,
        );
        let pso = pnode.run(&pexe, Orchestration::Software);
        let pho = pnode.run(&pexe, Orchestration::Hardware);
        let prefill_gain = pso.total / pho.total;
        assert!(decode_gain > 1.2, "decode HO gain {decode_gain:.2}");
        assert!(prefill_gain < 1.15, "prefill HO gain {prefill_gain:.2}");
        assert!(decode_gain > prefill_gain);
    }

    #[test]
    fn decode_latency_is_milliseconds_per_token() {
        // Memory-bound sanity: ~13.5 GB of weights over 16 TB/s of node
        // HBM at 85% is ~1 ms/token.
        let (exe, node) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Spatial);
        let t = node.run(&exe, Orchestration::Hardware).total.as_millis();
        assert!(t > 0.3 && t < 5.0, "decode step {t} ms");
    }

    #[test]
    fn prefill_latency_is_tens_of_milliseconds() {
        let (exe, node) = exec_llama(
            Phase::Prefill {
                prompt_tokens: 4096,
            },
            FusionPolicy::Spatial,
        );
        let t = node.run(&exe, Orchestration::Hardware).total.as_millis();
        assert!(t > 3.0 && t < 100.0, "prefill {t} ms");
    }

    #[test]
    fn decode_loop_amortizes_program_loads() {
        let (exe, node) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Spatial);
        let one = node.run(&exe, Orchestration::Hardware);
        let twenty = node.run_decode_loop(&exe, Orchestration::Hardware, 20);
        assert!(twenty.total.as_secs() < one.total.as_secs() * 20.0);
        assert_eq!(twenty.launches, one.launches * 20);
    }

    #[test]
    fn try_run_without_plan_matches_run() {
        let (exe, node) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Spatial);
        let plain = node.run(&exe, Orchestration::Hardware);
        let (aware, recovery) = node
            .try_run(&exe, Orchestration::Hardware, RetryPolicy::standard())
            .unwrap();
        assert_eq!(plain, aware);
        assert_eq!(recovery, Recovery::default());
    }

    #[test]
    fn socket_faults_charge_recovery_or_exhaust() {
        use sn_faults::FaultSpec;
        let plan =
            Arc::new(FaultPlan::new(2).with_site(FaultSite::SocketLink, FaultSpec::failing(0.5)));
        let (exe, node) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Spatial);
        let node = node.with_faults(plan);
        let mut recovered = TimeSecs::ZERO;
        let mut completed = 0;
        for _ in 0..32 {
            match node.try_run(&exe, Orchestration::Hardware, RetryPolicy::standard()) {
                Ok((_, recovery)) => {
                    completed += 1;
                    recovered += recovery.time;
                }
                Err(err) => recovered += err.recovery.time,
            }
        }
        assert!(
            completed >= 28,
            "3 retries absorb a 50% rate almost always: {completed}/32"
        );
        assert!(recovered.as_secs() > 0.0);
    }

    #[test]
    fn socket_slowdowns_stretch_the_report() {
        use sn_faults::FaultSpec;
        let plan =
            Arc::new(FaultPlan::new(2).with_site(FaultSite::SocketLink, FaultSpec::slow(1.0, 2.0)));
        let (exe, node) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Spatial);
        let clean = node.run(&exe, Orchestration::Hardware);
        let node = node.with_faults(plan);
        let (slowed, recovery) = node
            .try_run(&exe, Orchestration::Hardware, RetryPolicy::standard())
            .unwrap();
        assert!((slowed.total.as_secs() / clean.total.as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(slowed.launches, clean.launches);
        assert_eq!(recovery.retries, 0, "slowdowns are not retried");
    }

    #[test]
    fn traced_runs_record_launch_counters() {
        let t = Tracer::enabled();
        let (exe, node) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Spatial);
        let node = node.with_tracer(t.clone());
        let one = node.run(&exe, Orchestration::Hardware);
        node.run_decode_loop(&exe, Orchestration::Hardware, 10);
        let m = t.metrics();
        assert_eq!(
            m.counter(Counter::KernelLaunches),
            (one.launches + one.launches * 10) as u64
        );
        assert_eq!(m.histogram(Metric::KernelRun).unwrap().count(), 2);
        assert_eq!(t.event_count(), 2, "decode loop emits one span, not 11");
    }

    #[test]
    fn traced_report_matches_untraced() {
        let (exe, node) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Spatial);
        let traced = node.clone().with_tracer(Tracer::enabled());
        assert_eq!(
            node.run(&exe, Orchestration::Hardware),
            traced.run(&exe, Orchestration::Hardware)
        );
    }

    #[test]
    fn roofline_utilization_brackets_and_orders() {
        // Memory-bound decode: nonzero but far from the roof isn't
        // expected — attained tracks attainable, so utilization is high
        // under HO and drops once launch overheads dilute it under SO.
        let (exe, node) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Spatial);
        let ho = node.run(&exe, Orchestration::Hardware);
        let so = node.run(&exe, Orchestration::Software);
        let u_ho = node.roofline_utilization(&exe, &ho);
        let u_so = node.roofline_utilization(&exe, &so);
        assert!(u_ho > 0.0 && u_ho <= 1.0, "HO utilization {u_ho}");
        assert!(u_so > 0.0 && u_so <= 1.0, "SO utilization {u_so}");
        assert!(
            u_ho > u_so,
            "launch overheads pull utilization off the roof: {u_ho} vs {u_so}"
        );
        let zero = ExecutionReport {
            total: TimeSecs::ZERO,
            exec: TimeSecs::ZERO,
            launch: TimeSecs::ZERO,
            program_load: TimeSecs::ZERO,
            launches: 0,
            distinct_programs: 0,
        };
        assert_eq!(node.roofline_utilization(&exe, &zero), 0.0);
    }

    #[test]
    fn overhead_fraction_is_sane() {
        let (exe, node) = exec_llama(Phase::Decode { past_tokens: 4096 }, FusionPolicy::Unfused);
        let so = node.run(&exe, Orchestration::Software);
        assert!(
            so.overhead_fraction() > 0.5,
            "unfused SO decode is launch-dominated"
        );
        let ho = node.run(&exe, Orchestration::Hardware);
        assert!(ho.overhead_fraction() < so.overhead_fraction());
    }
}
