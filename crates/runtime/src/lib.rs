//! Execution engine and CoE runtime (§IV-D, §V-B).
//!
//! - [`executor`] runs a compiled [`sn_compiler::Executable`] on a socket
//!   or TP node, accounting kernel launch overheads under software or
//!   hardware orchestration;
//! - [`coe`] is the dynamic-linker-style CoE runtime: independently
//!   compiled models are registered into DDR blocks, activated into an HBM
//!   LRU cache on demand, and executed, with read-only symbols skipping
//!   the copy-back on eviction.
//!
//! # Example
//!
//! ```
//! use sn_arch::prelude::*;
//! use sn_compiler::{Compiler, FusionPolicy};
//! use sn_dataflow::monarch::monarch_fig3;
//! use sn_runtime::executor::NodeExecutor;
//!
//! let compiler = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
//! let exe = compiler.compile(&monarch_fig3(), FusionPolicy::Spatial).unwrap();
//! let node = NodeExecutor::new(NodeSpec::sn40l_node(), Calibration::baseline());
//! let report = node.run(&exe, Orchestration::Hardware);
//! assert!(report.total.as_secs() > 0.0);
//! ```

pub mod coe;
pub mod executor;
pub mod schedule;

pub use coe::{ActivationOutcome, CoeRuntime, CoeRuntimeConfig, EvictionPolicy, ModelBinary};
pub use executor::{ExecutionReport, NodeExecutor};
pub use schedule::{Command, LaunchSequence};
