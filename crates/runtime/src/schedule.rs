//! Kernel-launch sequences (§IV-D).
//!
//! Running a model is a schedule of kernel launches; each launch is the
//! command triple *Program Load → Argument Load → Kernel Execute*.
//! Program loads are skipped when the kernel's configuration is already
//! resident (identical decoder layers share one program). The sequence is
//! the artifact that software orchestration replays from the host and
//! hardware orchestration offloads to the AGCU.

use serde::{Deserialize, Serialize};
use sn_arch::{Calibration, Orchestration, TimeSecs};
use sn_compiler::{Executable, KernelId};
use std::collections::HashSet;

/// One AGCU command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Command {
    /// Load a kernel's configuration bitstream onto the tile.
    ProgramLoad(KernelId),
    /// Load the launch's runtime arguments (tensor addresses, sizes).
    ArgumentLoad(KernelId),
    /// Fire the kernel.
    KernelExecute(KernelId),
}

/// A fully expanded launch sequence for one execution of an executable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchSequence {
    commands: Vec<Command>,
    program_loads: usize,
    executes: usize,
}

impl LaunchSequence {
    /// Expands an executable into its command stream. Kernels sharing a
    /// program signature reuse the resident configuration: only the first
    /// occurrence issues a `ProgramLoad`.
    pub fn from_executable(exe: &Executable) -> Self {
        let mut commands = Vec::new();
        let mut resident: HashSet<u64> = HashSet::new();
        let mut program_loads = 0;
        for kernel in exe.kernels() {
            if resident.insert(kernel.program_signature) {
                commands.push(Command::ProgramLoad(kernel.id));
                program_loads += 1;
            }
            commands.push(Command::ArgumentLoad(kernel.id));
            commands.push(Command::KernelExecute(kernel.id));
        }
        let executes = exe.kernel_count();
        LaunchSequence {
            commands,
            program_loads,
            executes,
        }
    }

    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Number of `ProgramLoad` commands (distinct resident programs).
    pub fn program_loads(&self) -> usize {
        self.program_loads
    }

    /// Number of `KernelExecute` commands (launches).
    pub fn executes(&self) -> usize {
        self.executes
    }

    /// Total orchestration overhead of replaying this sequence: program
    /// loads plus the per-launch dispatch cost of the given mode. This is
    /// the quantity hardware orchestration shrinks (§IV-D); it matches
    /// [`crate::executor::NodeExecutor`]'s arithmetic by construction.
    pub fn overhead(&self, calib: &Calibration, orch: Orchestration) -> TimeSecs {
        calib.program_load * self.program_loads as f64
            + calib.launch_overhead(orch) * self.executes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::NodeExecutor;
    use sn_arch::{NodeSpec, SocketSpec};
    use sn_compiler::{Compiler, FusionPolicy};
    use sn_models::{build, Phase, TransformerConfig};

    fn decode_exe() -> Executable {
        let cfg = TransformerConfig::llama2_7b();
        let g = build(&cfg, Phase::Decode { past_tokens: 2048 }, 1, 8).unwrap();
        Compiler::new(SocketSpec::sn40l(), Calibration::baseline())
            .compile(&g, FusionPolicy::Spatial)
            .unwrap()
    }

    #[test]
    fn identical_layers_load_one_program() {
        let exe = decode_exe();
        let seq = LaunchSequence::from_executable(&exe);
        assert_eq!(seq.executes(), exe.kernel_count());
        assert_eq!(seq.program_loads(), exe.distinct_programs());
        assert!(
            seq.program_loads() < seq.executes() / 4,
            "layers share programs"
        );
    }

    #[test]
    fn command_stream_is_well_formed() {
        let exe = decode_exe();
        let seq = LaunchSequence::from_executable(&exe);
        // Every execute is immediately preceded by its argument load.
        let cmds = seq.commands();
        for (i, c) in cmds.iter().enumerate() {
            if let Command::KernelExecute(k) = c {
                assert_eq!(cmds[i - 1], Command::ArgumentLoad(*k));
            }
        }
        // A kernel never executes before its program was loaded.
        let mut loaded = std::collections::HashSet::new();
        let sig_of = |k: KernelId| exe.kernels()[k.index()].program_signature;
        for c in cmds {
            match c {
                Command::ProgramLoad(k) => {
                    loaded.insert(sig_of(*k));
                }
                Command::KernelExecute(k) => {
                    assert!(loaded.contains(&sig_of(*k)), "execute before program load");
                }
                Command::ArgumentLoad(_) => {}
            }
        }
    }

    #[test]
    fn sequence_overhead_matches_executor_arithmetic() {
        let exe = decode_exe();
        let seq = LaunchSequence::from_executable(&exe);
        let calib = Calibration::baseline();
        let node = NodeExecutor::new(NodeSpec::sn40l_node(), calib.clone());
        for orch in [Orchestration::Software, Orchestration::Hardware] {
            let report = node.run(&exe, orch);
            let expect = (report.launch + report.program_load).as_secs();
            let got = seq.overhead(&calib, orch).as_secs();
            assert!((got - expect).abs() < 1e-12, "{orch:?}: {got} vs {expect}");
        }
    }
}
