//! The CoE runtime (§V-B): dynamic linking of independently compiled
//! models, per-model DDR blocks, and an HBM activation cache with LRU
//! eviction and read-only copy-back elision.
//!
//! Every compiled model binary declares exactly how much HBM and DDR it
//! needs. Registration allocates one DDR block holding *all* segments
//! (including those destined for HBM). Activation copies the HBM segments
//! up; eviction copies only dirty segments back, because the compiler
//! annotates read-only symbols (weights) that never need the return trip.

use serde::{Deserialize, Serialize};
use sn_arch::{Bandwidth, Bytes, NodeSpec, TimeSecs};
use sn_faults::{FaultDecision, FaultPlan, FaultSite, Recovery, RetryPolicy};
use sn_memsim::{AllocError, DeviceMemory, MemoryTier, Region, SegmentTable, VirtAddr};
use sn_trace::{ArgValue, Counter, Metric, Tracer, Track};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// What a compiled model needs from the memory system (§V-B: "each
/// compiled model binary tells us ahead of time exactly how much HBM and
/// DDR space that model will require").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelBinary {
    pub name: String,
    /// Bytes the compiler intended for HBM (weights + resident state),
    /// summed across the node's sockets.
    pub hbm_bytes: Bytes,
    /// Bytes that live in DDR even while active (spilled symbols).
    pub ddr_only_bytes: Bytes,
    /// Portion of `hbm_bytes` annotated read-only (skips copy-back).
    pub read_only_bytes: Bytes,
}

impl ModelBinary {
    /// A weights-only model: everything HBM-resident and read-only.
    pub fn weights_only(name: impl Into<String>, weights: Bytes) -> Self {
        ModelBinary {
            name: name.into(),
            hbm_bytes: weights,
            ddr_only_bytes: Bytes::ZERO,
            read_only_bytes: weights,
        }
    }
}

/// Which resident model to evict when HBM fills (§V-B uses LRU; FIFO is
/// the ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionPolicy {
    Lru,
    Fifo,
}

/// Runtime configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoeRuntimeConfig {
    pub eviction: EvictionPolicy,
    /// Skip copying read-only symbols back to DDR on eviction (§V-B).
    pub skip_readonly_copyback: bool,
    /// HBM held back for the router, KV cache, and activations.
    pub hbm_reserved: Bytes,
}

impl Default for CoeRuntimeConfig {
    fn default() -> Self {
        CoeRuntimeConfig {
            eviction: EvictionPolicy::Lru,
            skip_readonly_copyback: true,
            hbm_reserved: Bytes::from_gib(48),
        }
    }
}

/// Result of one activation request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivationOutcome {
    /// The model was already resident: no copies at all.
    pub hit: bool,
    /// Models evicted to make room.
    pub evicted: Vec<String>,
    /// Bytes copied DDR -> HBM.
    pub copied_in: Bytes,
    /// Bytes copied HBM -> DDR for dirty evicted state.
    pub copied_back: Bytes,
    /// Wall time of the switch.
    pub switch_time: TimeSecs,
}

/// CoE runtime errors.
#[derive(Debug)]
pub enum CoeError {
    /// DDR cannot hold another model (the SN40L analog of the DGX's
    /// 150-expert OOM; a node holds 850+ Llama2-7B experts).
    DdrFull(AllocError),
    /// The model's HBM segments exceed the activation budget outright.
    TooLargeForHbm {
        name: String,
        need: Bytes,
        budget: Bytes,
    },
    /// Unknown model name.
    Unknown(String),
    /// Model registered twice.
    Duplicate(String),
    /// Building or compiling a model's dataflow graph failed while
    /// constructing a serving node.
    Compile { model: String, reason: String },
    /// An expert's DDR→HBM load kept failing after exhausting the retry
    /// budget (persistent corruption on the switch path).
    LoadFault { name: String, attempts: u32 },
    /// The router classification pass timed out on every attempt.
    RouterTimeout { attempts: u32 },
    /// The socket fabric kept dropping a prompt's execution past the
    /// retry budget.
    SocketDown { attempts: u32 },
    /// Every node in a cluster was marked failed; no survivor can take
    /// the re-routed prompts.
    NoHealthyNodes,
}

impl fmt::Display for CoeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoeError::DdrFull(e) => write!(f, "ddr exhausted: {e}"),
            CoeError::TooLargeForHbm { name, need, budget } => {
                write!(f, "{name} needs {need} of HBM, budget is {budget}")
            }
            CoeError::Unknown(n) => write!(f, "unknown model {n}"),
            CoeError::Duplicate(n) => write!(f, "model {n} already registered"),
            CoeError::Compile { model, reason } => {
                write!(f, "compiling {model} failed: {reason}")
            }
            CoeError::LoadFault { name, attempts } => {
                write!(f, "loading {name} failed {attempts} times; giving up")
            }
            CoeError::RouterTimeout { attempts } => {
                write!(f, "router classification timed out {attempts} times")
            }
            CoeError::SocketDown { attempts } => {
                write!(f, "socket fabric dropped execution {attempts} times")
            }
            CoeError::NoHealthyNodes => write!(f, "no healthy nodes left in the cluster"),
        }
    }
}

impl Error for CoeError {}

/// Cumulative runtime statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CoeStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub bytes_in: Bytes,
    pub bytes_back: Bytes,
    /// Injected expert-load failures absorbed by retries (or escalated).
    pub load_faults: u64,
}

/// Virtual base where every model's HBM-destined segments live; compiled
/// binaries are linked against this address and the AGCU translation layer
/// retargets it per activation (§IV-D).
pub const MODEL_SEGMENT_BASE: VirtAddr = VirtAddr(0x1000_0000);

#[derive(Debug)]
struct Registered {
    binary: ModelBinary,
    ddr_block: Region,
    hbm_block: Option<Region>,
    table: SegmentTable,
    last_use: u64,
    activated_at: u64,
}

/// The node-level CoE runtime.
#[derive(Debug)]
pub struct CoeRuntime {
    memory: DeviceMemory,
    switch_bandwidth: Bandwidth,
    config: CoeRuntimeConfig,
    models: HashMap<String, Registered>,
    clock: u64,
    stats: CoeStats,
    faults: Option<Arc<FaultPlan>>,
    retry: RetryPolicy,
    tracer: Tracer,
}

impl CoeRuntime {
    /// Builds a runtime over a node's aggregate HBM and DDR.
    pub fn new(node: &NodeSpec, config: CoeRuntimeConfig) -> Self {
        let memory =
            DeviceMemory::with_capacities(node.hbm_capacity(), node.ddr_capacity(), node.host_dram);
        CoeRuntime {
            memory,
            switch_bandwidth: node.model_switch_bandwidth(),
            config,
            models: HashMap::new(),
            clock: 0,
            stats: CoeStats::default(),
            faults: None,
            retry: RetryPolicy::standard(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a tracer: activations then emit hit instants or
    /// `switch:<model>` spans on the CoE track, bump the expert cache
    /// counters ([`Counter::ExpertHits`], [`Counter::ExpertMisses`],
    /// [`Counter::ExpertEvictions`], [`Counter::ExpertSwitchBytes`]), and
    /// record switch latencies in the [`Metric::ExpertSwitch`] histogram.
    /// Outcomes and state transitions are unaffected.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches a fault plan (consulted at [`FaultSite::ExpertLoad`] by
    /// [`CoeRuntime::activate_with_recovery`]) and the retry budget for
    /// absorbing injected load failures.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>, retry: RetryPolicy) -> Self {
        self.faults = Some(plan);
        self.retry = retry;
        self
    }

    /// The retry budget applied to faulted expert loads.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// HBM available for resident models.
    pub fn hbm_budget(&self) -> Bytes {
        self.memory
            .capacity(MemoryTier::Hbm)
            .saturating_sub(self.config.hbm_reserved)
    }

    /// Registers a model: allocates its DDR home block (which includes the
    /// segments destined for HBM — they start in DDR, §V-B).
    ///
    /// # Errors
    ///
    /// [`CoeError::Duplicate`] on re-registration; [`CoeError::DdrFull`]
    /// when node DDR cannot hold the model; [`CoeError::TooLargeForHbm`]
    /// when the model could never be activated.
    pub fn register(&mut self, binary: ModelBinary) -> Result<(), CoeError> {
        if self.models.contains_key(&binary.name) {
            return Err(CoeError::Duplicate(binary.name));
        }
        if binary.hbm_bytes > self.hbm_budget() {
            return Err(CoeError::TooLargeForHbm {
                name: binary.name,
                need: binary.hbm_bytes,
                budget: self.hbm_budget(),
            });
        }
        let total = binary.hbm_bytes + binary.ddr_only_bytes;
        let ddr_block = self
            .memory
            .alloc(MemoryTier::Ddr, total)
            .map_err(CoeError::DdrFull)?;
        // The model's working segment initially points at its DDR home.
        let mut table = SegmentTable::new();
        table
            .map(
                MODEL_SEGMENT_BASE,
                Region {
                    tier: MemoryTier::Ddr,
                    offset: ddr_block.offset,
                    size: binary.hbm_bytes,
                },
            )
            .expect("fresh table has no overlaps");
        self.models.insert(
            binary.name.clone(),
            Registered {
                binary,
                ddr_block,
                hbm_block: None,
                table,
                last_use: 0,
                activated_at: 0,
            },
        );
        Ok(())
    }

    /// Number of registered models.
    pub fn registered_count(&self) -> usize {
        self.models.len()
    }

    /// Whether `name` is currently HBM-resident. A pure query: it never
    /// touches LRU recency, so probing residency cannot perturb
    /// eviction order.
    pub fn is_resident(&self, name: &str) -> bool {
        self.models.get(name).is_some_and(|r| r.hbm_block.is_some())
    }

    /// Names of currently HBM-resident models.
    pub fn active_models(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .models
            .iter()
            .filter(|(_, r)| r.hbm_block.is_some())
            .map(|(n, _)| n.clone())
            .collect();
        v.sort();
        v
    }

    pub fn stats(&self) -> CoeStats {
        self.stats
    }

    /// Translates a model-space virtual address through its segment table —
    /// the AGCU view of where the model's weights currently live (§IV-D).
    ///
    /// # Errors
    ///
    /// [`CoeError::Unknown`] for unregistered names.
    pub fn translate(
        &self,
        name: &str,
        addr: VirtAddr,
    ) -> Result<Result<sn_memsim::PhysAddr, sn_memsim::TranslateError>, CoeError> {
        let reg = self
            .models
            .get(name)
            .ok_or_else(|| CoeError::Unknown(name.to_string()))?;
        Ok(reg.table.translate(addr))
    }

    fn pick_victim(&self, exclude: &str) -> Option<String> {
        let candidates = self
            .models
            .iter()
            .filter(|(n, r)| r.hbm_block.is_some() && n.as_str() != exclude);
        match self.config.eviction {
            EvictionPolicy::Lru => candidates
                .min_by_key(|(_, r)| r.last_use)
                .map(|(n, _)| n.clone()),
            EvictionPolicy::Fifo => candidates
                .min_by_key(|(_, r)| r.activated_at)
                .map(|(n, _)| n.clone()),
        }
    }

    /// Explicitly deactivates a resident model (frees its HBM block with
    /// the usual copy-back accounting). No-op if the model is not
    /// resident.
    ///
    /// # Errors
    ///
    /// [`CoeError::Unknown`] for unregistered names.
    pub fn deactivate(&mut self, name: &str) -> Result<TimeSecs, CoeError> {
        let reg = self
            .models
            .get_mut(name)
            .ok_or_else(|| CoeError::Unknown(name.to_string()))?;
        let Some(block) = reg.hbm_block.take() else {
            return Ok(TimeSecs::ZERO);
        };
        reg.table
            .remap(
                MODEL_SEGMENT_BASE,
                Region {
                    tier: MemoryTier::Ddr,
                    offset: reg.ddr_block.offset,
                    size: reg.binary.hbm_bytes,
                },
            )
            .expect("segment size matches");
        let dirty = if self.config.skip_readonly_copyback {
            reg.binary
                .hbm_bytes
                .saturating_sub(reg.binary.read_only_bytes)
        } else {
            reg.binary.hbm_bytes
        };
        self.memory.free(block).expect("block was live");
        self.stats.bytes_back += dirty;
        Ok(dirty / self.switch_bandwidth)
    }

    /// Unregisters a model entirely, releasing both its HBM residency and
    /// its DDR home block.
    ///
    /// # Errors
    ///
    /// [`CoeError::Unknown`] for unregistered names.
    pub fn unregister(&mut self, name: &str) -> Result<(), CoeError> {
        self.deactivate(name)?;
        let reg = self.models.remove(name).expect("checked by deactivate");
        self.memory.free(reg.ddr_block).expect("ddr block was live");
        Ok(())
    }

    /// Clears the cumulative statistics (hit/miss counting windows).
    pub fn reset_stats(&mut self) {
        self.stats = CoeStats::default();
    }

    /// Activates a model, evicting as needed; returns the outcome with the
    /// simulated switch time.
    ///
    /// # Errors
    ///
    /// [`CoeError::Unknown`] for unregistered names.
    pub fn activate(&mut self, name: &str) -> Result<ActivationOutcome, CoeError> {
        self.clock += 1;
        let clock = self.clock;
        {
            let reg = self
                .models
                .get_mut(name)
                .ok_or_else(|| CoeError::Unknown(name.to_string()))?;
            if reg.hbm_block.is_some() {
                reg.last_use = clock;
                self.stats.hits += 1;
                if self.tracer.is_enabled() {
                    self.tracer.count(Counter::ExpertHits, 1);
                    self.tracer.instant(Track::Coe, format!("hit:{name}"), &[]);
                }
                return Ok(ActivationOutcome {
                    hit: true,
                    evicted: Vec::new(),
                    copied_in: Bytes::ZERO,
                    copied_back: Bytes::ZERO,
                    switch_time: TimeSecs::ZERO,
                });
            }
        }
        self.stats.misses += 1;
        let need = self.models[name].binary.hbm_bytes;
        let budget = self.hbm_budget();
        let mut evicted = Vec::new();
        let mut copied_back = Bytes::ZERO;
        // Evict until the new model fits under the activation budget.
        while self.memory.used_bytes(MemoryTier::Hbm) + need > budget {
            let victim = self
                .pick_victim(name)
                .expect("resident model exists while over budget");
            let reg = self.models.get_mut(&victim).expect("victim is registered");
            let block = reg.hbm_block.take().expect("victim was resident");
            reg.table
                .remap(
                    MODEL_SEGMENT_BASE,
                    Region {
                        tier: MemoryTier::Ddr,
                        offset: reg.ddr_block.offset,
                        size: reg.binary.hbm_bytes,
                    },
                )
                .expect("segment size matches");
            let dirty = if self.config.skip_readonly_copyback {
                reg.binary
                    .hbm_bytes
                    .saturating_sub(reg.binary.read_only_bytes)
            } else {
                reg.binary.hbm_bytes
            };
            copied_back += dirty;
            self.memory.free(block).expect("victim block was live");
            self.stats.evictions += 1;
            evicted.push(victim);
        }
        let block = self
            .memory
            .alloc(MemoryTier::Hbm, need)
            .expect("eviction loop freed enough HBM");
        let reg = self.models.get_mut(name).expect("checked above");
        reg.table
            .remap(MODEL_SEGMENT_BASE, block)
            .expect("segment size equals hbm_bytes");
        reg.hbm_block = Some(block);
        reg.last_use = clock;
        reg.activated_at = clock;
        let copied_in = need;
        self.stats.bytes_in += copied_in;
        self.stats.bytes_back += copied_back;
        let switch_time = (copied_in + copied_back) / self.switch_bandwidth;
        if self.tracer.is_enabled() {
            self.tracer.count(Counter::ExpertMisses, 1);
            self.tracer
                .count(Counter::ExpertEvictions, evicted.len() as u64);
            self.tracer.count(
                Counter::ExpertSwitchBytes,
                (copied_in + copied_back).as_u64(),
            );
            self.tracer.observe(Metric::ExpertSwitch, switch_time);
            self.tracer.span(
                Track::Coe,
                format!("switch:{name}"),
                switch_time,
                &[
                    ("copied_in_bytes", ArgValue::from(copied_in.as_u64())),
                    ("copied_back_bytes", ArgValue::from(copied_back.as_u64())),
                    ("evictions", ArgValue::from(evicted.len())),
                ],
            );
        }
        Ok(ActivationOutcome {
            hit: false,
            evicted,
            copied_in,
            copied_back,
            switch_time,
        })
    }

    /// Speculatively stages a model into HBM ahead of demand (PR 7
    /// placement prefetch). Returns `Ok(None)` when the model is already
    /// resident — deliberately *without* touching `last_use` or the
    /// hit/miss statistics, so speculation never perturbs the demand
    /// path's LRU order or its counters. A non-resident model goes
    /// through the same eviction/alloc/remap machinery as a demand miss —
    /// and because a speculative load never refreshes `last_use` after
    /// staging, *stale speculations are themselves the LRU-preferred
    /// eviction victims*: a misprediction's weights are the first thing a
    /// later stage (or demand miss) reclaims. The transfer is charged as
    /// prefetch traffic by the caller: this method records evictions and
    /// byte movement in [`CoeStats`], yet leaves
    /// `ExpertMisses`/`ExpertSwitchBytes` untouched (the cluster counts
    /// the transfer under `PrefetchIssued` and the DMA ledger instead).
    ///
    /// # Errors
    ///
    /// [`CoeError::Unknown`] for unregistered names.
    pub fn prefetch(&mut self, name: &str) -> Result<Option<ActivationOutcome>, CoeError> {
        {
            let reg = self
                .models
                .get(name)
                .ok_or_else(|| CoeError::Unknown(name.to_string()))?;
            if reg.hbm_block.is_some() {
                return Ok(None);
            }
        }
        self.clock += 1;
        let clock = self.clock;
        let need = self.models[name].binary.hbm_bytes;
        let budget = self.hbm_budget();
        let mut evicted = Vec::new();
        let mut copied_back = Bytes::ZERO;
        while self.memory.used_bytes(MemoryTier::Hbm) + need > budget {
            let victim = self
                .pick_victim(name)
                .expect("resident model exists while over budget");
            let reg = self.models.get_mut(&victim).expect("victim is registered");
            let block = reg.hbm_block.take().expect("victim was resident");
            reg.table
                .remap(
                    MODEL_SEGMENT_BASE,
                    Region {
                        tier: MemoryTier::Ddr,
                        offset: reg.ddr_block.offset,
                        size: reg.binary.hbm_bytes,
                    },
                )
                .expect("segment size matches");
            let dirty = if self.config.skip_readonly_copyback {
                reg.binary
                    .hbm_bytes
                    .saturating_sub(reg.binary.read_only_bytes)
            } else {
                reg.binary.hbm_bytes
            };
            copied_back += dirty;
            self.memory.free(block).expect("victim block was live");
            self.stats.evictions += 1;
            evicted.push(victim);
        }
        let block = self
            .memory
            .alloc(MemoryTier::Hbm, need)
            .expect("eviction loop freed enough HBM");
        let reg = self.models.get_mut(name).expect("checked above");
        reg.table
            .remap(MODEL_SEGMENT_BASE, block)
            .expect("segment size equals hbm_bytes");
        reg.hbm_block = Some(block);
        reg.last_use = clock;
        reg.activated_at = clock;
        let copied_in = need;
        self.stats.bytes_in += copied_in;
        self.stats.bytes_back += copied_back;
        let switch_time = (copied_in + copied_back) / self.switch_bandwidth;
        if self.tracer.is_enabled() {
            self.tracer
                .count(Counter::ExpertEvictions, evicted.len() as u64);
            self.tracer.span(
                Track::Coe,
                format!("prefetch:{name}"),
                switch_time,
                &[
                    ("copied_in_bytes", ArgValue::from(copied_in.as_u64())),
                    ("copied_back_bytes", ArgValue::from(copied_back.as_u64())),
                    ("evictions", ArgValue::from(evicted.len())),
                ],
            );
        }
        Ok(Some(ActivationOutcome {
            hit: false,
            evicted,
            copied_in,
            copied_back,
            switch_time,
        }))
    }

    /// Fault-aware activation: like [`CoeRuntime::activate`], but misses
    /// consult the attached fault plan at [`FaultSite::ExpertLoad`] and
    /// drive the DDR→HBM load through the runtime's [`RetryPolicy`].
    ///
    /// Injected load failures are retried; the wasted attempt time plus
    /// backoff comes back in the [`Recovery`] so callers can charge it
    /// into serving latency. Slowdown draws stretch the returned
    /// `switch_time`. With no plan attached this is exactly `activate` —
    /// same arithmetic, same state transitions, bit-identical outcomes.
    ///
    /// # Errors
    ///
    /// [`CoeError::Unknown`] for unregistered names; [`CoeError::LoadFault`]
    /// when the retry budget is exhausted (the model's residency is rolled
    /// back so the cache state stays coherent).
    pub fn activate_with_recovery(
        &mut self,
        name: &str,
    ) -> Result<(ActivationOutcome, Recovery), CoeError> {
        let Some(plan) = self.faults.clone() else {
            return Ok((self.activate(name)?, Recovery::default()));
        };
        let mut outcome = self.activate(name)?;
        if outcome.hit {
            // No data moves on a hit: nothing for the plan to corrupt.
            return Ok((outcome, Recovery::default()));
        }
        let switch_time = outcome.switch_time;
        match self
            .retry
            .run(|_| match plan.decide(FaultSite::ExpertLoad) {
                FaultDecision::Ok => Ok(1.0),
                FaultDecision::Slow(factor) => Ok(factor),
                FaultDecision::Fail => Err(switch_time),
            }) {
            Ok((factor, recovery)) => {
                self.stats.load_faults += recovery.retries as u64;
                if self.tracer.is_enabled() && recovery.retries > 0 {
                    self.tracer
                        .count(Counter::RetriesAbsorbed, recovery.retries as u64);
                    self.tracer.instant(
                        Track::Coe,
                        format!("load-retry:{name}"),
                        &[
                            ("retries", ArgValue::from(recovery.retries as u64)),
                            ("recovery_us", ArgValue::from(recovery.time.as_micros())),
                        ],
                    );
                }
                outcome.switch_time = outcome.switch_time * factor;
                Ok((outcome, recovery))
            }
            Err(exhausted) => {
                self.stats.load_faults += exhausted.attempts as u64;
                // The weights never arrived intact: roll residency back so
                // the activation cache matches reality.
                self.deactivate(name)?;
                Err(CoeError::LoadFault {
                    name: name.to_string(),
                    attempts: exhausted.attempts,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expert(i: usize) -> ModelBinary {
        ModelBinary::weights_only(format!("expert{i}"), Bytes::from_gb(13.48))
    }

    fn runtime() -> CoeRuntime {
        CoeRuntime::new(&NodeSpec::sn40l_node(), CoeRuntimeConfig::default())
    }

    #[test]
    fn node_registers_850_experts() {
        // §VI-B: a single SN40L Node holds a CoE of up to 850 experts.
        let mut rt = runtime();
        for i in 0..850 {
            rt.register(expert(i)).expect("850 experts fit node DDR");
        }
        assert_eq!(rt.registered_count(), 850);
    }

    #[test]
    fn repeat_requests_hit_with_zero_cost() {
        let mut rt = runtime();
        rt.register(expert(0)).unwrap();
        let first = rt.activate("expert0").unwrap();
        assert!(!first.hit);
        assert!(first.switch_time.as_secs() > 0.0);
        let second = rt.activate("expert0").unwrap();
        assert!(second.hit);
        assert!(second.switch_time.is_zero());
    }

    #[test]
    fn prefetch_stages_weights_for_a_free_hit() {
        let mut rt = runtime();
        rt.register(expert(0)).unwrap();
        let staged = rt.prefetch("expert0").unwrap().expect("cold → staged");
        assert!(!staged.hit);
        assert!(staged.switch_time.as_secs() > 0.0);
        assert!(
            rt.prefetch("expert0").unwrap().is_none(),
            "already resident"
        );
        let hit = rt.activate("expert0").unwrap();
        assert!(hit.hit);
        assert!(hit.switch_time.is_zero());
        let stats = rt.stats();
        assert_eq!(stats.misses, 0, "prefetch is not a demand miss");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn prefetch_of_resident_expert_does_not_perturb_lru() {
        let mut rt = runtime();
        for i in 0..37 {
            rt.register(expert(i)).unwrap();
        }
        for i in 0..36 {
            rt.activate(&format!("expert{i}")).unwrap();
        }
        // expert0 is the LRU victim; a speculative prefetch of it must
        // not refresh its recency the way a demand hit would.
        assert!(rt.prefetch("expert0").unwrap().is_none());
        let outcome = rt.activate("expert36").unwrap();
        assert_eq!(outcome.evicted, vec!["expert0".to_string()]);
    }

    #[test]
    fn switch_time_matches_ddr_bandwidth() {
        // Figure 1: ~13.5 GB over >1 TB/s of node DDR->HBM is ~13 ms.
        let mut rt = runtime();
        rt.register(expert(0)).unwrap();
        let t = rt.activate("expert0").unwrap().switch_time.as_millis();
        assert!(t > 8.0 && t < 20.0, "switch {t} ms");
    }

    #[test]
    fn lru_keeps_hot_experts() {
        let mut rt = runtime();
        // Budget 512 - 48 = 464 GiB -> 36 experts of 13.48 GB.
        for i in 0..40 {
            rt.register(expert(i)).unwrap();
        }
        for i in 0..36 {
            rt.activate(&format!("expert{i}")).unwrap();
        }
        // Touch expert0 so it becomes MRU, then force one eviction.
        rt.activate("expert0").unwrap();
        let outcome = rt.activate("expert36").unwrap();
        assert!(!outcome.evicted.contains(&"expert0".to_string()));
        assert_eq!(outcome.evicted, vec!["expert1".to_string()]);
    }

    #[test]
    fn fifo_evicts_insertion_order() {
        let mut rt = CoeRuntime::new(
            &NodeSpec::sn40l_node(),
            CoeRuntimeConfig {
                eviction: EvictionPolicy::Fifo,
                ..Default::default()
            },
        );
        for i in 0..37 {
            rt.register(expert(i)).unwrap();
        }
        for i in 0..36 {
            rt.activate(&format!("expert{i}")).unwrap();
        }
        rt.activate("expert0").unwrap(); // hit; FIFO ignores recency
        let outcome = rt.activate("expert36").unwrap();
        assert_eq!(outcome.evicted, vec!["expert0".to_string()]);
    }

    #[test]
    fn read_only_weights_skip_copy_back() {
        let mut rt = runtime();
        for i in 0..37 {
            rt.register(expert(i)).unwrap();
        }
        for i in 0..37 {
            let o = rt.activate(&format!("expert{i}")).unwrap();
            assert_eq!(o.copied_back, Bytes::ZERO, "weights never copy back");
        }
        assert!(rt.stats().evictions > 0);
    }

    #[test]
    fn dirty_state_copies_back_when_elision_disabled() {
        let mut rt = CoeRuntime::new(
            &NodeSpec::sn40l_node(),
            CoeRuntimeConfig {
                skip_readonly_copyback: false,
                ..Default::default()
            },
        );
        for i in 0..37 {
            rt.register(expert(i)).unwrap();
        }
        let mut back = Bytes::ZERO;
        for i in 0..37 {
            back += rt.activate(&format!("expert{i}")).unwrap().copied_back;
        }
        assert!(back > Bytes::ZERO, "without elision, evictions copy back");
    }

    #[test]
    fn oversized_model_rejected_up_front() {
        let mut rt = runtime();
        let huge = ModelBinary::weights_only("huge", Bytes::from_tib(1));
        assert!(matches!(
            rt.register(huge),
            Err(CoeError::TooLargeForHbm { .. })
        ));
    }

    #[test]
    fn unknown_and_duplicate_models_error() {
        let mut rt = runtime();
        rt.register(expert(0)).unwrap();
        assert!(matches!(
            rt.register(expert(0)),
            Err(CoeError::Duplicate(_))
        ));
        assert!(matches!(rt.activate("nope"), Err(CoeError::Unknown(_))));
    }

    #[test]
    fn deactivate_frees_hbm_for_others() {
        let mut rt = runtime();
        for i in 0..37 {
            rt.register(expert(i)).unwrap();
        }
        for i in 0..36 {
            rt.activate(&format!("expert{i}")).unwrap();
        }
        // Voluntarily deactivate one; the next activation evicts nothing.
        rt.deactivate("expert0").unwrap();
        let outcome = rt.activate("expert36").unwrap();
        assert!(outcome.evicted.is_empty());
    }

    #[test]
    fn unregister_releases_ddr() {
        let mut rt = runtime();
        rt.register(expert(0)).unwrap();
        rt.activate("expert0").unwrap();
        rt.unregister("expert0").unwrap();
        assert_eq!(rt.registered_count(), 0);
        // The name can be reused.
        rt.register(expert(0)).unwrap();
        assert!(matches!(rt.unregister("nope"), Err(CoeError::Unknown(_))));
    }

    #[test]
    fn stats_reset_zeroes_counters() {
        let mut rt = runtime();
        rt.register(expert(0)).unwrap();
        rt.activate("expert0").unwrap();
        assert!(rt.stats().misses > 0);
        rt.reset_stats();
        assert_eq!(rt.stats().misses, 0);
        assert_eq!(rt.stats().bytes_in, Bytes::ZERO);
    }

    #[test]
    fn translation_follows_residency() {
        use sn_memsim::MemoryTier;
        let mut rt = runtime();
        rt.register(expert(0)).unwrap();
        let probe = VirtAddr(MODEL_SEGMENT_BASE.0 + 64);
        // Inactive: the segment points at DDR.
        let p = rt.translate("expert0", probe).unwrap().unwrap();
        assert_eq!(p.tier, MemoryTier::Ddr);
        // Active: the same virtual address now resolves into HBM.
        rt.activate("expert0").unwrap();
        let p = rt.translate("expert0", probe).unwrap().unwrap();
        assert_eq!(p.tier, MemoryTier::Hbm);
        // Deactivated: back to DDR.
        rt.deactivate("expert0").unwrap();
        let p = rt.translate("expert0", probe).unwrap().unwrap();
        assert_eq!(p.tier, MemoryTier::Ddr);
        // Outside the mapped window: a fault, not garbage.
        assert!(rt.translate("expert0", VirtAddr(0)).unwrap().is_err());
    }

    #[test]
    fn eviction_retargets_the_victims_segment() {
        use sn_memsim::MemoryTier;
        let mut rt = runtime();
        for i in 0..37 {
            rt.register(expert(i)).unwrap();
        }
        for i in 0..37 {
            rt.activate(&format!("expert{i}")).unwrap();
        }
        // expert0 was evicted by the 37th activation: its segment must
        // point back at DDR while expert36's points at HBM.
        let probe = MODEL_SEGMENT_BASE;
        assert_eq!(
            rt.translate("expert0", probe).unwrap().unwrap().tier,
            MemoryTier::Ddr
        );
        assert_eq!(
            rt.translate("expert36", probe).unwrap().unwrap().tier,
            MemoryTier::Hbm
        );
    }

    #[test]
    fn recovery_activation_without_plan_matches_activate() {
        let mut plain = runtime();
        let mut aware = runtime();
        plain.register(expert(0)).unwrap();
        aware.register(expert(0)).unwrap();
        let want = plain.activate("expert0").unwrap();
        let (got, recovery) = aware.activate_with_recovery("expert0").unwrap();
        assert_eq!(want, got);
        assert_eq!(recovery, Recovery::default());
    }

    #[test]
    fn injected_load_failures_are_retried_and_charged() {
        use sn_faults::FaultSpec;
        // Fail roughly a third of loads: the standard 3-retry budget
        // absorbs them all at this rate over a handful of activations.
        let plan =
            Arc::new(FaultPlan::new(5).with_site(FaultSite::ExpertLoad, FaultSpec::failing(0.33)));
        let mut rt = runtime().with_faults(plan, RetryPolicy::standard());
        let mut recovered = TimeSecs::ZERO;
        let mut completed = 0;
        for i in 0..8 {
            rt.register(expert(i)).unwrap();
            match rt.activate_with_recovery(&format!("expert{i}")) {
                Ok((outcome, recovery)) => {
                    assert!(!outcome.hit);
                    recovered += recovery.time;
                    completed += 1;
                }
                Err(CoeError::LoadFault { .. }) => {} // 0.33^4 per load
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(completed >= 6, "retries absorb most faults: {completed}/8");
        assert!(rt.stats().load_faults > 0, "a third of loads should fault");
        assert!(recovered.as_secs() > 0.0, "retries charge recovery time");
    }

    #[test]
    fn persistent_load_failure_rolls_residency_back() {
        use sn_faults::FaultSpec;
        let plan =
            Arc::new(FaultPlan::new(5).with_site(FaultSite::ExpertLoad, FaultSpec::failing(1.0)));
        let mut rt = runtime().with_faults(plan, RetryPolicy::standard());
        rt.register(expert(0)).unwrap();
        let err = rt.activate_with_recovery("expert0").unwrap_err();
        assert!(
            matches!(err, CoeError::LoadFault { attempts: 4, .. }),
            "got {err}"
        );
        // The corrupt load must not leave the expert marked resident.
        assert!(rt.active_models().is_empty());
        // The expert stays registered and can be activated once the
        // faults clear (hits on the DDR home, then a clean reload).
        rt.reset_stats();
    }

    #[test]
    fn hits_never_consult_the_fault_plan() {
        use sn_faults::FaultSpec;
        let plan =
            Arc::new(FaultPlan::new(5).with_site(FaultSite::ExpertLoad, FaultSpec::failing(1.0)));
        let shared = Arc::clone(&plan);
        let mut rt = runtime().with_faults(plan, RetryPolicy::none());
        rt.register(expert(0)).unwrap();
        rt.activate("expert0").unwrap(); // fault-oblivious warm-up
        let (outcome, recovery) = rt.activate_with_recovery("expert0").unwrap();
        assert!(outcome.hit);
        assert_eq!(recovery, Recovery::default());
        assert_eq!(shared.stats().site(FaultSite::ExpertLoad).draws, 0);
    }

    #[test]
    fn traced_activations_record_cache_counters() {
        let t = Tracer::enabled();
        let mut rt = runtime().with_tracer(t.clone());
        rt.register(expert(0)).unwrap();
        let miss = rt.activate("expert0").unwrap();
        rt.activate("expert0").unwrap();
        let m = t.metrics();
        assert_eq!(m.counter(Counter::ExpertMisses), 1);
        assert_eq!(m.counter(Counter::ExpertHits), 1);
        assert_eq!(
            m.counter(Counter::ExpertSwitchBytes),
            miss.copied_in.as_u64()
        );
        assert_eq!(m.histogram(Metric::ExpertSwitch).unwrap().count(), 1);
        // One switch span + one hit instant.
        assert_eq!(t.event_count(), 2);
    }

    #[test]
    fn traced_outcomes_match_untraced() {
        let mut plain = runtime();
        let mut traced = runtime().with_tracer(Tracer::enabled());
        plain.register(expert(0)).unwrap();
        traced.register(expert(0)).unwrap();
        assert_eq!(
            plain.activate("expert0").unwrap(),
            traced.activate("expert0").unwrap()
        );
    }

    #[test]
    fn ddr_eventually_fills() {
        let mut rt = runtime();
        let mut registered = 0;
        for i in 0..2000 {
            match rt.register(expert(i)) {
                Ok(()) => registered += 1,
                Err(CoeError::DdrFull(_)) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(
            (850..1050).contains(&registered),
            "12 TiB DDR should hold ~970 experts, got {registered}"
        );
    }
}
