//! On-chip resource estimation: how many PCUs and PMUs an operator (and a
//! fused kernel) needs.
//!
//! The rules follow Figure 4's mapping discipline: compute units are
//! assigned in proportion to each stage's share of the work ("more compute
//! units are assigned to Gemm0 and Gemm1 as they account for a larger
//! fraction of the total operations"), memory units are assigned to stage
//! buffers for capacity and bandwidth, and reorder operators consume no
//! PCUs at all — they become PMU read/write access patterns (§IV-B).

use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, SocketSpec};
use sn_dataflow::{AccessPattern, Graph, NodeId};

/// FLOPs one PCU gang-unit is expected to carry per kernel instance before
/// the gang must grow; sets how aggressively large operators parallelize.
const FLOPS_PER_PCU: f64 = (1u64 << 28) as f64;
/// Elements one SIMD PCU carries before the gang grows.
const ELEMS_PER_SIMD_PCU: f64 = (1u64 << 22) as f64;
/// Output rows processed per pipeline tile (the streaming granularity).
pub const TILE_ROWS: usize = 128;
/// Fraction of the socket's units a single kernel may claim (the paper's
/// fused decoder uses "almost 90% of the PCUs and PMUs").
const UNIT_BUDGET_FRACTION: f64 = 0.92;

/// Resource needs of one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KernelResources {
    pub pcus: usize,
    pub pmus: usize,
    /// Pipeline stages (compute ops; reorders fold into buffers).
    pub stages: usize,
}

impl KernelResources {
    /// Component-wise sum.
    pub fn combine(self, other: KernelResources) -> KernelResources {
        KernelResources {
            pcus: self.pcus + other.pcus,
            pmus: self.pmus + other.pmus,
            stages: self.stages + other.stages,
        }
    }
}

/// Per-socket resource model.
#[derive(Debug, Clone)]
pub struct ResourceModel {
    pcu_budget: usize,
    pmu_budget: usize,
    pmu_capacity: Bytes,
}

impl ResourceModel {
    pub fn new(socket: &SocketSpec) -> Self {
        ResourceModel {
            pcu_budget: (socket.chip.pcus as f64 * UNIT_BUDGET_FRACTION) as usize,
            pmu_budget: (socket.chip.pmus as f64 * UNIT_BUDGET_FRACTION) as usize,
            pmu_capacity: socket.chip.pmu.scratchpad,
        }
    }

    /// PCUs a single kernel may claim.
    pub fn pcu_budget(&self) -> usize {
        self.pcu_budget
    }

    /// PMUs a single kernel may claim.
    pub fn pmu_budget(&self) -> usize {
        self.pmu_budget
    }

    /// PCU gang size for one operator.
    pub fn node_pcus(&self, graph: &Graph, node: NodeId) -> usize {
        let n = graph.node(node);
        match n.op.access_pattern() {
            AccessPattern::Contraction => {
                let flops = graph.node_flops(node).as_f64();
                ((flops / FLOPS_PER_PCU).ceil() as usize).clamp(4, 256)
            }
            AccessPattern::Streaming | AccessPattern::RowLocal => {
                let elems = graph.tensor(n.output).shape.elements() as f64;
                ((elems / ELEMS_PER_SIMD_PCU).ceil() as usize).clamp(2, 64)
            }
            // Transposes, slices, gathers become PMU access patterns;
            // collectives run on AGCUs.
            AccessPattern::Reorder | AccessPattern::Collective => 0,
        }
    }

    /// PMUs for one operator's output stage buffer: double-buffered tiles
    /// sized for capacity, plus a minimum for read/write bandwidth
    /// decoupling (every stage buffer needs at least one memory unit; wide
    /// consumers split across several, like I00/I01 in Figure 4).
    pub fn node_pmus(&self, graph: &Graph, node: NodeId) -> usize {
        let n = graph.node(node);
        if n.op.access_pattern() == AccessPattern::Collective {
            return 0;
        }
        let out = graph.tensor(n.output);
        let tile_bytes = tile_bytes(&out.shape, out.dtype.size_bytes());
        let capacity_pmus = (2 * tile_bytes.as_u64()).div_ceil(self.pmu_capacity.as_u64()) as usize;
        // GEMMs also stage their weight panels on-chip.
        let weight_pmus = if n.op.is_gemm() { 2 } else { 0 };
        capacity_pmus.max(1) + weight_pmus
    }

    /// Resources for a whole node (one kernel stage).
    pub fn node_resources(&self, graph: &Graph, node: NodeId) -> KernelResources {
        let pcus = self.node_pcus(graph, node);
        KernelResources {
            pcus,
            pmus: self.node_pmus(graph, node),
            stages: usize::from(pcus > 0),
        }
    }

    /// Resources for a set of nodes fused into one kernel.
    pub fn kernel_resources(&self, graph: &Graph, nodes: &[NodeId]) -> KernelResources {
        nodes
            .iter()
            .map(|&n| self.node_resources(graph, n))
            .fold(KernelResources::default(), KernelResources::combine)
    }

    /// Whether a kernel with these resources fits the socket.
    pub fn fits(&self, r: KernelResources) -> bool {
        r.pcus <= self.pcu_budget && r.pmus <= self.pmu_budget
    }
}

/// Bytes of one pipeline tile of a tensor: up to [`TILE_ROWS`] outer rows.
pub fn tile_bytes(shape: &sn_dataflow::Shape, elem_bytes: u64) -> Bytes {
    let (rows, inner) = shape.as_2d();
    let tile_rows = rows.min(TILE_ROWS as u64);
    Bytes::new(tile_rows * inner * elem_bytes)
}

/// Number of pipeline tiles a tensor streams as.
pub fn tile_count(shape: &sn_dataflow::Shape) -> u64 {
    let (rows, _) = shape.as_2d();
    rows.div_ceil(TILE_ROWS as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_dataflow::{DType, GraphBuilder, OpKind, Shape, TensorKind, UnaryKind};

    fn graph_with_gemm(m: usize, k: usize, n: usize) -> (Graph, NodeId) {
        let mut b = GraphBuilder::new("t");
        let x = b.tensor("x", Shape::mat(m, k), DType::Bf16, TensorKind::Input);
        let w = b.tensor("w", Shape::mat(k, n), DType::Bf16, TensorKind::Weight);
        let y = b
            .node("g", OpKind::Gemm { transpose_b: false }, &[x, w])
            .unwrap();
        b.mark_output(y);
        let g = b.build().unwrap();
        let n = g.node_ids().next().unwrap();
        (g, n)
    }

    fn model() -> ResourceModel {
        ResourceModel::new(&SocketSpec::sn40l())
    }

    #[test]
    fn bigger_gemms_get_bigger_gangs() {
        let m = model();
        let (g1, n1) = graph_with_gemm(128, 512, 512);
        let (g2, n2) = graph_with_gemm(4096, 4096, 4096);
        assert!(m.node_pcus(&g2, n2) > m.node_pcus(&g1, n1));
    }

    #[test]
    fn decode_size_gemm_needs_minimal_gang() {
        let m = model();
        // Decode: one token row.
        let (g, n) = graph_with_gemm(1, 4096, 512);
        assert_eq!(m.node_pcus(&g, n), 4);
    }

    #[test]
    fn gang_sizes_are_capped() {
        let m = model();
        let (g, n) = graph_with_gemm(8192, 8192, 8192);
        assert_eq!(m.node_pcus(&g, n), 256);
    }

    #[test]
    fn reorders_use_no_pcus() {
        let mut b = GraphBuilder::new("t");
        let x = b.tensor("x", Shape::mat(64, 64), DType::Bf16, TensorKind::Input);
        let y = b
            .node("tr", OpKind::Transpose { perm: vec![1, 0] }, &[x])
            .unwrap();
        b.mark_output(y);
        let g = b.build().unwrap();
        let n = g.node_ids().next().unwrap();
        let m = model();
        assert_eq!(m.node_pcus(&g, n), 0);
        assert!(
            m.node_pmus(&g, n) >= 1,
            "the reorder still needs its buffer"
        );
    }

    #[test]
    fn stage_buffers_are_tile_sized_not_tensor_sized() {
        // A huge activation only needs PMUs for its tile, not the whole
        // tensor — that is what makes spatial fusion of long-sequence
        // prefill possible at all.
        let mut b = GraphBuilder::new("t");
        let x = b.tensor("x", Shape::mat(65536, 4096), DType::Bf16, TensorKind::Input);
        let y = b.node("act", OpKind::Unary(UnaryKind::Gelu), &[x]).unwrap();
        b.mark_output(y);
        let g = b.build().unwrap();
        let n = g.node_ids().next().unwrap();
        let m = model();
        // Tile = 128 rows x 4096 cols x 2 B = 1 MiB; double-buffered = 4 PMUs.
        assert_eq!(m.node_pmus(&g, n), 4);
    }

    #[test]
    fn budget_reflects_socket_size() {
        let m = model();
        assert!(m.pcu_budget() > 900 && m.pcu_budget() < 1040);
        assert!(m.pmu_budget() > 900 && m.pmu_budget() < 1040);
    }

    #[test]
    fn tile_math_is_consistent() {
        let s = Shape::mat(1000, 64);
        assert_eq!(tile_count(&s), 8);
        assert_eq!(tile_bytes(&s, 2), Bytes::new(128 * 64 * 2));
        let small = Shape::mat(10, 64);
        assert_eq!(tile_count(&small), 1);
        assert_eq!(tile_bytes(&small, 2), Bytes::new(10 * 64 * 2));
    }
}
