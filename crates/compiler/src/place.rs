//! Place-and-route onto the tile mesh (§IV-C).
//!
//! A compiled kernel's stages are placed in snake order across the mesh so
//! consecutive pipeline stages sit close together, then inter-stage flows
//! are routed XY. The report carries the quantities the paper's compiler
//! reasons about: hop counts, the worst link load (congestion risk), and
//! how many flow IDs the kernel needs under the SN10 global-pool scheme
//! versus the SN40L per-link MPLS scheme (§IV-E).

use crate::executable::Kernel;
use serde::{Deserialize, Serialize};
use sn_arch::TileGeometry;
use sn_dataflow::Graph;
use std::collections::HashMap;

/// Result of placing one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementReport {
    /// Mesh positions used (PCU gangs + PMU buffers).
    pub positions_used: usize,
    /// Mean Manhattan hops between consecutive stage centroids.
    pub avg_hops: f64,
    /// Highest number of flows sharing a single mesh link.
    pub max_link_load: usize,
    /// Flow IDs needed if IDs burn chip-wide on any shared switch (SN10).
    pub flow_ids_global: usize,
    /// Peak flow IDs needed on any single link (SN40L MPLS relabeling).
    pub flow_ids_mpls: usize,
}

/// Stage placer for one die's tile.
#[derive(Debug, Clone)]
pub struct Placer {
    tile: TileGeometry,
}

impl Placer {
    pub fn new(tile: TileGeometry) -> Self {
        Placer { tile }
    }

    /// Places a kernel and routes its inter-stage flows.
    ///
    /// Stages are laid out in snake order; each stage occupies
    /// `pcus + pmus` consecutive positions and is represented by its
    /// centroid for routing. Oversized kernels wrap around the tile
    /// (time-multiplexed), which the report surfaces via `positions_used`.
    pub fn place(&self, graph: &Graph, kernel: &Kernel) -> PlacementReport {
        let cols = self.tile.cols.max(1);
        let rows = self.tile.rows.max(1);
        // Footprint per stage in mesh positions.
        let model_positions = |pcus: usize, pmus: usize| (pcus + pmus).max(1);
        let mut centroids: Vec<(f64, f64)> = Vec::new();
        let mut cursor = 0usize;
        let mut positions_used = 0usize;
        for &nid in &kernel.nodes {
            // Reuse the per-node resource shares recorded in the kernel:
            // approximate each node's footprint as an equal share when the
            // kernel was fused (exact shares live in ResourceModel, but the
            // placement question only needs relative locality).
            let share = model_positions(
                kernel.resources.pcus / kernel.nodes.len().max(1),
                kernel.resources.pmus / kernel.nodes.len().max(1),
            );
            let start = cursor;
            let end = cursor + share;
            let mid = (start + end) / 2 % (cols * rows);
            let (x, y) = (mid % cols, mid / cols);
            // Snake order: odd rows run right-to-left.
            let x = if y % 2 == 1 { cols - 1 - x } else { x };
            centroids.push((x as f64, y as f64));
            cursor = end;
            positions_used = positions_used.max(end.min(cols * rows));
            let _ = graph.node(nid);
        }
        // Route consecutive stages XY and accumulate link loads.
        type Link = ((usize, usize), (usize, usize));
        let mut link_load: HashMap<Link, usize> = HashMap::new();
        let mut total_hops = 0usize;
        let mut edges = 0usize;
        for w in centroids.windows(2) {
            let (ax, ay) = (w[0].0 as usize, w[0].1 as usize);
            let (bx, by) = (w[1].0 as usize, w[1].1 as usize);
            let mut at = (ax, ay);
            while at != (bx, by) {
                let next = if at.0 != bx {
                    (if bx > at.0 { at.0 + 1 } else { at.0 - 1 }, at.1)
                } else {
                    (at.0, if by > at.1 { at.1 + 1 } else { at.1 - 1 })
                };
                *link_load.entry((at, next)).or_insert(0) += 1;
                total_hops += 1;
                at = next;
            }
            edges += 1;
        }
        let max_link_load = link_load.values().copied().max().unwrap_or(0);
        // Flow-ID accounting: each inter-stage edge is a flow. Global pool:
        // flows sharing any switch need distinct IDs, and with snake
        // placement every flow crosses the dense center, so the bound is
        // simply the flow count. MPLS: IDs are per-link, so the requirement
        // is the max link load.
        let flow_ids_global = edges;
        let flow_ids_mpls = max_link_load;
        PlacementReport {
            positions_used,
            avg_hops: if edges == 0 {
                0.0
            } else {
                total_hops as f64 / edges as f64
            },
            max_link_load,
            flow_ids_global,
            flow_ids_mpls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, FusionPolicy};
    use sn_arch::{Calibration, SocketSpec};
    use sn_dataflow::monarch::flash_fft_conv;

    #[test]
    fn placement_keeps_stages_local() {
        let g = flash_fft_conv(8, 32, 3);
        let c = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
        let exe = c.compile(&g, FusionPolicy::Spatial).unwrap();
        let placer = Placer::new(SocketSpec::sn40l().chip.tile);
        let report = placer.place(&g, &exe.kernels()[0]);
        assert!(report.positions_used > 0);
        assert!(
            report.avg_hops < 10.0,
            "snake placement keeps hops short: {}",
            report.avg_hops
        );
    }

    #[test]
    fn mpls_needs_fewer_ids_than_global_pool() {
        let g = flash_fft_conv(8, 32, 3);
        let c = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
        let exe = c.compile(&g, FusionPolicy::Spatial).unwrap();
        let placer = Placer::new(SocketSpec::sn40l().chip.tile);
        let report = placer.place(&g, &exe.kernels()[0]);
        assert!(
            report.flow_ids_mpls <= report.flow_ids_global,
            "per-link labels never need more IDs than a global pool"
        );
    }
}
