//! The dataflow compiler: turns a [`sn_dataflow::Graph`] into an
//! [`Executable`] for one RDU socket.
//!
//! The pipeline mirrors the software stack described in the paper:
//!
//! 1. [`fusion`] — partition the graph into spatially fused kernels under
//!    on-chip resource constraints (§III-A, §VI-A), or one kernel per
//!    operator for the unfused baseline;
//! 2. [`resources`] — assign PCU gangs and PMU stage buffers to each
//!    kernel, balancing stages by their share of the work (Figure 4);
//! 3. [`place`] — place units on the tile mesh and route flows, including
//!    flow-ID allocation (§IV-C, §IV-E);
//! 4. [`memplan`] — static symbol-lifetime memory allocation with
//!    address reuse ("static garbage collection") and bandwidth-sorted DDR
//!    spill (§V-A);
//! 5. [`estimate`] — the static bandwidth model: per-kernel time from
//!    compute/memory rooflines, pipeline fill, and collective exposure
//!    (§VII "Managing bandwidth in software").
//!
//! The result, [`Executable`], is what `sn-runtime` launches.
//!
//! # Example
//!
//! ```
//! use sn_compiler::{Compiler, FusionPolicy};
//! use sn_dataflow::monarch::monarch_fig3;
//! use sn_arch::prelude::*;
//!
//! let compiler = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
//! let exe = compiler.compile(&monarch_fig3(), FusionPolicy::Spatial).unwrap();
//! // The whole Figure 3 graph fuses into a single kernel (§VI-A).
//! assert_eq!(exe.kernel_count(), 1);
//! ```

pub mod bandwidth;
pub mod estimate;
pub mod executable;
pub mod fusion;
pub mod memplan;
pub mod place;
pub mod resources;

pub use bandwidth::{plan_executable, plan_streams, StreamPlan};
pub use estimate::{Bound, KernelEstimate};
pub use executable::{Executable, Kernel, KernelId};
pub use fusion::FusionPolicy;
pub use memplan::{MemoryPlan, SpillPolicy, SymbolPlacement};
pub use place::{PlacementReport, Placer};
pub use resources::{KernelResources, ResourceModel};

use sn_arch::{Calibration, SocketSpec};
use sn_dataflow::{Graph, GraphError};
use std::error::Error;
use std::fmt;

/// Compilation failures.
#[derive(Debug)]
pub enum CompileError {
    /// The input graph was malformed.
    Graph(GraphError),
    /// A single operator exceeds the socket's resources even alone.
    OperatorTooLarge {
        node: String,
        pcus: usize,
        pmus: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Graph(e) => write!(f, "graph error: {e}"),
            CompileError::OperatorTooLarge { node, pcus, pmus } => {
                write!(
                    f,
                    "operator {node} needs {pcus} PCUs / {pmus} PMUs, exceeding the socket"
                )
            }
        }
    }
}

impl Error for CompileError {}

impl From<GraphError> for CompileError {
    fn from(e: GraphError) -> Self {
        CompileError::Graph(e)
    }
}

/// The compiler: a socket target plus calibration constants.
#[derive(Debug, Clone)]
pub struct Compiler {
    socket: SocketSpec,
    calib: Calibration,
}

impl Compiler {
    pub fn new(socket: SocketSpec, calib: Calibration) -> Self {
        Compiler { socket, calib }
    }

    pub fn socket(&self) -> &SocketSpec {
        &self.socket
    }

    pub fn calibration(&self) -> &Calibration {
        &self.calib
    }

    /// Compiles a graph into an executable under the given fusion policy.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::OperatorTooLarge`] if some single operator
    /// cannot fit the socket even as its own kernel.
    pub fn compile(&self, graph: &Graph, policy: FusionPolicy) -> Result<Executable, CompileError> {
        let model = ResourceModel::new(&self.socket);
        let partition = fusion::partition(graph, policy, &model)?;
        let kernels = executable::build_kernels(graph, &partition, &model);
        let memory = memplan::plan(graph, &kernels, &self.socket);
        let estimates = kernels
            .iter()
            .map(|k| estimate::estimate_kernel(graph, k, &self.socket, &self.calib, policy))
            .collect();
        Ok(Executable::new(
            graph.name().to_string(),
            policy,
            kernels,
            estimates,
            memory,
        ))
    }
}
