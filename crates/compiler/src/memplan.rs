//! Static memory allocation (§V-A).
//!
//! The SN40L programming model has neither dynamic allocation nor pointer
//! aliasing, so symbol lifetimes are known statically. The compiler
//! performs "garbage collection" by assigning multiple symbols to the same
//! device addresses when their lifetimes do not overlap, and when HBM still
//! does not fit, spills the symbols with the *smallest aggregate transfer
//! size* (bytes x uses) to DDR — weights, being hot, stay in HBM while
//! activations spill first.

use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, SocketSpec};
use sn_dataflow::{Graph, TensorId, TensorKind};
use sn_memsim::{MemoryTier, RegionAllocator};
use std::collections::{HashMap, HashSet};

use crate::executable::Kernel;

/// Executions of the kernel schedule a persistent symbol is expected to
/// serve before being re-planned (the autoregressive decode loop re-reads
/// weights and KV state every token — the temporal locality of §III-B).
/// Transient activations live for a single execution.
const PERSISTENT_REUSE: u64 = 16;

/// How to choose spill victims when HBM does not fit (§V-A ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpillPolicy {
    /// The paper's policy: activations before weights, smallest aggregate
    /// transfer size first.
    BandwidthSorted,
    /// Naive baseline: spill symbols in declaration (symbol-table) order —
    /// what an allocator does when it evicts without a cost model. Weights
    /// are declared before the activations that consume them, so hot
    /// parameters get pushed out first.
    DeclarationOrder,
}

/// Where one symbol lives and why.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SymbolPlacement {
    pub tensor: TensorId,
    pub tier: MemoryTier,
    /// Assigned device virtual address (offset within the tier). Addresses
    /// are reused across disjoint lifetimes — two placements may share an
    /// offset.
    pub offset: u64,
    pub bytes: Bytes,
    /// Estimated bytes moved for this symbol over the whole execution
    /// (size times boundary crossings); the spill policy's sort key.
    pub aggregate_traffic: Bytes,
    /// Kernel-index lifetime `[def, last_use]`.
    pub lifetime: (usize, usize),
}

/// The memory plan for one compiled executable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryPlan {
    placements: Vec<SymbolPlacement>,
    hbm_peak: Bytes,
    spilled: Vec<TensorId>,
}

impl MemoryPlan {
    /// Total DDR traffic implied by the spill decisions: every spilled
    /// symbol's aggregate transfer now crosses the slow tier. This is the
    /// §V-A objective the bandwidth-sorted policy minimizes.
    pub fn spill_traffic(&self) -> Bytes {
        self.placements
            .iter()
            .filter(|p| p.tier == MemoryTier::Ddr)
            .map(|p| p.aggregate_traffic)
            .sum()
    }

    pub fn placements(&self) -> &[SymbolPlacement] {
        &self.placements
    }

    /// Peak concurrent HBM usage after address reuse.
    pub fn hbm_peak(&self) -> Bytes {
        self.hbm_peak
    }

    /// Symbols spilled to DDR.
    pub fn spilled(&self) -> &[TensorId] {
        &self.spilled
    }

    /// Placement of a specific tensor, if it is materialized at all.
    pub fn placement(&self, t: TensorId) -> Option<&SymbolPlacement> {
        self.placements.iter().find(|p| p.tensor == t)
    }

    /// Total bytes resident in a tier (sum of placements; note address
    /// reuse means peak usage can be lower).
    pub fn tier_bytes(&self, tier: MemoryTier) -> Bytes {
        self.placements
            .iter()
            .filter(|p| p.tier == tier)
            .map(|p| p.bytes)
            .sum()
    }
}

/// Computes the plan with the paper's bandwidth-sorted spill policy.
pub fn plan(graph: &Graph, kernels: &[Kernel], socket: &SocketSpec) -> MemoryPlan {
    plan_with_policy(graph, kernels, socket, SpillPolicy::BandwidthSorted)
}

/// Computes the plan: which tensors materialize off-chip, their lifetimes,
/// their tier, and their (reusable) addresses.
pub fn plan_with_policy(
    graph: &Graph,
    kernels: &[Kernel],
    socket: &SocketSpec,
    policy: SpillPolicy,
) -> MemoryPlan {
    let n_kernels = kernels.len();
    // Which kernel produces / consumes each tensor.
    let mut producer_kernel: HashMap<TensorId, usize> = HashMap::new();
    let mut consumer_kernels: HashMap<TensorId, Vec<usize>> = HashMap::new();
    for (ki, k) in kernels.iter().enumerate() {
        let inside: HashSet<_> = k.nodes.iter().copied().collect();
        for &nid in &k.nodes {
            let node = graph.node(nid);
            for &t in &node.inputs {
                let produced_inside = graph
                    .producer(t)
                    .map(|p| inside.contains(&p))
                    .unwrap_or(false);
                if !produced_inside {
                    consumer_kernels.entry(t).or_default().push(ki);
                }
            }
            let out = node.output;
            let escapes = graph.tensor(out).kind == TensorKind::Output
                || graph.consumers(out).iter().any(|c| !inside.contains(c));
            if escapes {
                producer_kernel.insert(out, ki);
            }
        }
    }

    // Materialized symbols: every tensor that crosses a kernel boundary
    // and is off-chip eligible.
    let mut symbols: Vec<SymbolPlacement> = Vec::new();
    for t in graph.tensor_ids() {
        let def = graph.tensor(t);
        if !def.is_offchip() {
            continue;
        }
        let produced = producer_kernel.get(&t).copied();
        let consumed = consumer_kernels.get(&t);
        if produced.is_none() && consumed.is_none() {
            continue;
        }
        // Weights/inputs live from program start; outputs live to the end.
        let start = match (def.kind, produced) {
            (
                TensorKind::Weight | TensorKind::Input | TensorKind::Metadata | TensorKind::KvCache,
                _,
            ) => 0,
            (_, Some(p)) => p,
            (_, None) => 0,
        };
        let end = match def.kind {
            TensorKind::Output | TensorKind::KvCache | TensorKind::Weight => {
                n_kernels.saturating_sub(1)
            }
            _ => consumed
                .map(|v| v.iter().copied().max().expect("non-empty"))
                .unwrap_or(start),
        };
        let crossings = 1 + consumed.map(|v| v.len()).unwrap_or(0);
        let reuse = match def.kind {
            TensorKind::Weight | TensorKind::Metadata | TensorKind::KvCache => PERSISTENT_REUSE,
            _ => 1,
        };
        symbols.push(SymbolPlacement {
            tensor: t,
            tier: MemoryTier::Hbm,
            offset: 0,
            bytes: def.bytes(),
            aggregate_traffic: def.bytes() * crossings as u64 * reuse,
            lifetime: (start, end.max(start)),
        });
    }

    // Spill decision: simulate peak HBM usage with everything in HBM;
    // while it exceeds the budget, spill the cheapest symbol (activations
    // before weights, then by smallest aggregate transfer size — §V-A).
    let budget = socket.hbm.capacity;
    // (peak bytes, kernel index where the peak occurs)
    let peak_of = |syms: &[SymbolPlacement]| -> (Bytes, usize) {
        let mut peak = Bytes::ZERO;
        let mut at = 0;
        for k in 0..n_kernels.max(1) {
            let live: Bytes = syms
                .iter()
                .filter(|s| s.tier == MemoryTier::Hbm)
                .filter(|s| s.lifetime.0 <= k && k <= s.lifetime.1)
                .map(|s| s.bytes)
                .sum();
            if live > peak {
                peak = live;
                at = k;
            }
        }
        (peak, at)
    };
    let mut spilled = Vec::new();
    loop {
        let (peak, at) = peak_of(&symbols);
        if peak <= budget || budget == Bytes::ZERO {
            break;
        }
        // Only symbols live at the peak can reduce it.
        let live_at_peak = |s: &SymbolPlacement| {
            s.tier == MemoryTier::Hbm && s.lifetime.0 <= at && at <= s.lifetime.1
        };
        let candidate = match policy {
            SpillPolicy::BandwidthSorted => symbols
                .iter()
                .enumerate()
                .filter(|(_, s)| live_at_peak(s))
                .min_by_key(|(_, s)| {
                    let is_weight = graph.tensor(s.tensor).kind == TensorKind::Weight;
                    (is_weight, s.aggregate_traffic)
                })
                .map(|(i, _)| i),
            SpillPolicy::DeclarationOrder => symbols
                .iter()
                .enumerate()
                .filter(|(_, s)| live_at_peak(s))
                .map(|(i, _)| i)
                .next(),
        };
        match candidate {
            Some(i) => {
                symbols[i].tier = MemoryTier::Ddr;
                spilled.push(symbols[i].tensor);
            }
            None => break,
        }
    }
    // SN10-style sockets (no HBM) keep everything in DDR.
    if budget == Bytes::ZERO {
        for s in &mut symbols {
            if s.tier == MemoryTier::Hbm {
                s.tier = MemoryTier::Ddr;
                spilled.push(s.tensor);
            }
        }
    }

    // Address assignment with static GC: sweep kernels in order; free dead
    // symbols before allocating new ones so addresses get reused.
    for tier in [MemoryTier::Hbm, MemoryTier::Ddr] {
        let capacity = match tier {
            MemoryTier::Hbm => socket.hbm.capacity,
            _ => socket.ddr.capacity,
        };
        if capacity == Bytes::ZERO {
            continue;
        }
        let mut alloc = RegionAllocator::new(tier, capacity);
        let mut live: Vec<(usize, sn_memsim::Region)> = Vec::new(); // (symbol idx, region)
        let mut order: Vec<usize> = (0..symbols.len())
            .filter(|&i| symbols[i].tier == tier)
            .collect();
        order.sort_by_key(|&i| symbols[i].lifetime.0);
        let mut oi = 0;
        for k in 0..n_kernels.max(1) {
            // Free symbols whose lifetime ended before this kernel.
            let mut j = 0;
            while j < live.len() {
                let (si, region) = live[j];
                if symbols[si].lifetime.1 < k {
                    alloc.free(region).expect("region was allocated");
                    live.swap_remove(j);
                } else {
                    j += 1;
                }
            }
            while oi < order.len() && symbols[order[oi]].lifetime.0 == k {
                let si = order[oi];
                // If the tier overflows even after GC, fall back to a
                // virtual address past capacity (flagged by peak stats).
                match alloc.alloc(symbols[si].bytes) {
                    Ok(region) => {
                        symbols[si].offset = region.offset;
                        live.push((si, region));
                    }
                    Err(_) => {
                        symbols[si].offset = u64::MAX;
                    }
                }
                oi += 1;
            }
        }
    }

    let (hbm_peak, _) = peak_of(&symbols);
    MemoryPlan {
        placements: symbols,
        hbm_peak,
        spilled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, FusionPolicy};
    use sn_arch::{Bandwidth, Calibration};
    use sn_dataflow::{DType, GraphBuilder, OpKind, Shape, TensorKind, UnaryKind};

    fn chain_graph(layers: u32) -> Graph {
        let mut b = GraphBuilder::new("chain");
        let mut cur = b.tensor("x", Shape::mat(4096, 4096), DType::Bf16, TensorKind::Input);
        for l in 0..layers {
            b.set_region(l);
            let w = b.tensor("w", Shape::mat(4096, 4096), DType::Bf16, TensorKind::Weight);
            cur = b
                .node("g", OpKind::Gemm { transpose_b: false }, &[cur, w])
                .unwrap();
            cur = b.node("a", OpKind::Unary(UnaryKind::Gelu), &[cur]).unwrap();
        }
        b.mark_output(cur);
        b.build().unwrap()
    }

    #[test]
    fn everything_fits_hbm_by_default() {
        let g = chain_graph(4);
        let c = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
        let exe = c.compile(&g, FusionPolicy::Spatial).unwrap();
        assert!(exe.memory().spilled().is_empty());
        assert!(exe.memory().hbm_peak() <= SocketSpec::sn40l().hbm.capacity);
    }

    #[test]
    fn addresses_are_reused_across_lifetimes() {
        // Unfused: every activation materializes, but dead activations
        // free their addresses, so peak usage stays near two activations
        // plus weights rather than layers x activation.
        let g = chain_graph(8);
        let c = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
        let exe = c.compile(&g, FusionPolicy::Unfused).unwrap();
        let act = Bytes::new(4096 * 4096 * 2);
        let weights = g.weight_bytes();
        let peak = exe.memory().hbm_peak();
        assert!(
            peak < weights + act * 4,
            "peak {peak} should reflect address reuse (weights {weights})"
        );
    }

    #[test]
    fn activations_spill_before_weights() {
        // Shrink HBM so the plan must spill; weights stay resident.
        let mut socket = SocketSpec::sn40l();
        socket.hbm.capacity = Bytes::from_mib(400);
        socket.hbm.bandwidth = Bandwidth::from_tb_per_s(2.0);
        let g = chain_graph(12); // weights 12*32 MiB, activations 32 MiB each
        let c = Compiler::new(socket, Calibration::baseline());
        let exe = c.compile(&g, FusionPolicy::Unfused).unwrap();
        let spilled = exe.memory().spilled();
        assert!(!spilled.is_empty(), "400 MiB cannot hold everything");
        for &t in spilled {
            assert_ne!(
                g.tensor(t).kind,
                TensorKind::Weight,
                "weights must keep HBM priority (§V-A)"
            );
        }
    }

    #[test]
    fn sn10_plans_everything_in_ddr() {
        let g = chain_graph(2);
        let c = Compiler::new(SocketSpec::sn10(), Calibration::baseline());
        let exe = c.compile(&g, FusionPolicy::Spatial).unwrap();
        assert_eq!(exe.memory().tier_bytes(MemoryTier::Hbm), Bytes::ZERO);
        assert!(exe.memory().tier_bytes(MemoryTier::Ddr) > Bytes::ZERO);
    }

    #[test]
    fn placements_share_offsets_only_when_lifetimes_disjoint() {
        let g = chain_graph(8);
        let c = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
        let exe = c.compile(&g, FusionPolicy::Unfused).unwrap();
        let ps = exe.memory().placements();
        for (i, a) in ps.iter().enumerate() {
            for b in &ps[i + 1..] {
                if a.tier != b.tier || a.offset == u64::MAX || b.offset == u64::MAX {
                    continue;
                }
                let overlap_addr = a.offset < b.offset + b.bytes.as_u64()
                    && b.offset < a.offset + a.bytes.as_u64();
                let overlap_life = a.lifetime.0 <= b.lifetime.1 && b.lifetime.0 <= a.lifetime.1;
                assert!(
                    !(overlap_addr && overlap_life),
                    "symbols {:?} and {:?} alias while both live",
                    a.tensor,
                    b.tensor
                );
            }
        }
    }
}
