//! Static bandwidth allocation (§VII "Managing bandwidth in software").
//!
//! "To utilize more bandwidth from units like HBM, more load and store
//! data streams need to be created by software. Conversely, units needing
//! less bandwidth should be allocated fewer resources to avoid
//! overprovisioning and wastage." This module sizes the DMA stream count
//! per kernel from the static estimate, checks it against the socket's
//! AGCU stream capacity, and reports over/under-provisioning.

use crate::estimate::KernelEstimate;
use crate::executable::Kernel;
use serde::{Deserialize, Serialize};
use sn_arch::{Bandwidth, SocketSpec};
use sn_dataflow::{Graph, OpKind};

/// Sustained bandwidth of one AGCU DMA stream: one vector (64 B) per
/// cycle at the core clock.
pub fn per_stream_bandwidth(socket: &SocketSpec) -> Bandwidth {
    Bandwidth::from_bytes_per_s(64.0 * socket.chip.clock.as_hz())
}

/// Total concurrent DMA streams the socket's AGCUs sustain.
pub fn stream_capacity(socket: &SocketSpec) -> usize {
    socket.chip.tile.agcus * socket.chip.dies * socket.chip.agcu.dma_streams
}

/// The stream plan for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamPlan {
    /// Average off-chip bandwidth the kernel must sustain to meet its
    /// static time estimate.
    pub required_bandwidth: Bandwidth,
    /// DMA streams allocated to meet it.
    pub hbm_streams: usize,
    /// Streams for P2P collective traffic.
    pub p2p_streams: usize,
    /// The allocation exceeds what the kernel needs by more than one
    /// stream — §VII's "wastage" condition (possible when the per-kernel
    /// floor exceeds demand).
    pub overprovisioned: bool,
    /// The socket cannot provide the required streams: the kernel would
    /// be stream-limited below its roofline (a compiler bug upstream).
    pub infeasible: bool,
}

/// Sizes streams for a kernel from its estimate.
pub fn plan_streams(
    graph: &Graph,
    kernel: &Kernel,
    estimate: &KernelEstimate,
    socket: &SocketSpec,
) -> StreamPlan {
    let per_stream = per_stream_bandwidth(socket);
    let required_bandwidth = if estimate.time.is_zero() {
        Bandwidth::ZERO
    } else {
        Bandwidth::from_bytes_per_s(estimate.traffic.as_f64() / estimate.time.as_secs())
    };
    let needed = (required_bandwidth / per_stream).ceil() as usize;
    // Every kernel holds at least one load and one store stream.
    let hbm_streams = needed.max(2);
    let p2p_streams = kernel
        .nodes
        .iter()
        .filter(|&&n| matches!(graph.node(n).op, OpKind::AllReduce { .. }))
        .count()
        * 2; // send + receive per collective
    let capacity = stream_capacity(socket);
    StreamPlan {
        required_bandwidth,
        hbm_streams,
        p2p_streams,
        overprovisioned: hbm_streams > needed + 1,
        infeasible: hbm_streams + p2p_streams > capacity,
    }
}

/// Plans every kernel of an executable; the socket-level sanity check the
/// paper's compiler performs before committing a mapping.
pub fn plan_executable(
    graph: &Graph,
    exe: &crate::Executable,
    socket: &SocketSpec,
) -> Vec<StreamPlan> {
    exe.kernels()
        .iter()
        .zip(exe.estimates())
        .map(|(k, e)| plan_streams(graph, k, e, socket))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, FusionPolicy};
    use sn_arch::Calibration;
    use sn_models::{build, Phase, TransformerConfig};

    fn socket() -> SocketSpec {
        SocketSpec::sn40l()
    }

    #[test]
    fn stream_capacity_covers_hbm_saturation() {
        // Saturating 85% of 2 TB/s needs ~23 streams of 76.8 GB/s; the
        // AGCUs provide far more (§IV-D's concurrent stream pool).
        let s = socket();
        let needed = (s.hbm.effective_bandwidth() / per_stream_bandwidth(&s)).ceil() as usize;
        assert!(
            needed <= stream_capacity(&s),
            "{needed} vs {}",
            stream_capacity(&s)
        );
    }

    #[test]
    fn decode_kernels_need_many_streams() {
        // A fused weight-streaming decode layer approaches HBM bandwidth,
        // so its plan must allocate many concurrent streams.
        let cfg = TransformerConfig::llama2_7b();
        let g = build(&cfg, Phase::Decode { past_tokens: 4096 }, 1, 8).unwrap();
        let compiler = Compiler::new(socket(), Calibration::baseline());
        let exe = compiler.compile(&g, FusionPolicy::Spatial).unwrap();
        let plans = plan_executable(&g, &exe, &socket());
        let max_streams = plans.iter().map(|p| p.hbm_streams).max().unwrap();
        assert!(
            max_streams >= 10,
            "decode layers should fan out streams, got {max_streams}"
        );
        assert!(plans.iter().all(|p| !p.infeasible));
    }

    #[test]
    fn small_kernels_hold_minimal_streams() {
        let cfg = TransformerConfig::llama2_7b();
        let g = build(&cfg, Phase::Decode { past_tokens: 128 }, 1, 8).unwrap();
        let compiler = Compiler::new(socket(), Calibration::baseline());
        let exe = compiler.compile(&g, FusionPolicy::Unfused).unwrap();
        let plans = plan_executable(&g, &exe, &socket());
        // Elementwise unfused kernels barely touch memory per unit time,
        // yet never drop below the load+store floor.
        assert!(plans.iter().all(|p| p.hbm_streams >= 2));
        assert!(plans.iter().any(|p| p.hbm_streams == 2));
    }

    #[test]
    fn collectives_get_their_own_streams() {
        let cfg = TransformerConfig::llama2_7b();
        let g = build(&cfg, Phase::Decode { past_tokens: 1024 }, 1, 8).unwrap();
        let compiler = Compiler::new(socket(), Calibration::baseline());
        let exe = compiler.compile(&g, FusionPolicy::Spatial).unwrap();
        let plans = plan_executable(&g, &exe, &socket());
        let with_p2p = plans.iter().filter(|p| p.p2p_streams > 0).count();
        assert!(
            with_p2p >= cfg.layers,
            "each layer's collectives need streams"
        );
    }

    #[test]
    fn required_bandwidth_never_exceeds_the_roofline() {
        let cfg = TransformerConfig::llama2_7b();
        for phase in [
            Phase::Prefill {
                prompt_tokens: 2048,
            },
            Phase::Decode { past_tokens: 2048 },
        ] {
            let g = build(&cfg, phase, 1, 8).unwrap();
            let compiler = Compiler::new(socket(), Calibration::baseline());
            let exe = compiler.compile(&g, FusionPolicy::Spatial).unwrap();
            for p in plan_executable(&g, &exe, &socket()) {
                assert!(
                    p.required_bandwidth.as_bytes_per_s()
                        <= socket().hbm.effective_bandwidth().as_bytes_per_s() * 1.001,
                    "a kernel cannot demand more than effective HBM bandwidth"
                );
            }
        }
    }
}
