//! The static bandwidth model (§VII "Managing bandwidth in software").
//!
//! The paper's compiler predicts kernel performance "to a first order
//! statically" from a bandwidth model of the application and the hardware.
//! We do the same: a kernel's time is the maximum of its compute roofline
//! and its memory roofline, inflated by pipeline fill, plus any exposed
//! collective-communication time.

use crate::executable::Kernel;
use crate::fusion::FusionPolicy;
use crate::resources::{tile_count, TILE_ROWS};
use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, Calibration, Flops, SocketSpec, TimeSecs};
use sn_dataflow::{Graph, OpKind};

/// What limits a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bound {
    /// PCU throughput bound (high operational intensity).
    Compute,
    /// Off-chip bandwidth bound (low operational intensity).
    Memory,
    /// Dominated by inter-socket collective communication.
    Collective,
}

/// The static model's verdict for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelEstimate {
    /// Execution time, excluding launch overhead.
    pub time: TimeSecs,
    pub bound: Bound,
    /// Off-chip boundary traffic.
    pub traffic: Bytes,
    pub flops: Flops,
    /// Exposed (non-overlapped) collective time included in `time`.
    pub collective: TimeSecs,
    /// Operational intensity in FLOPs/byte.
    pub intensity: f64,
}

/// Estimates one kernel on one socket.
pub fn estimate_kernel(
    graph: &Graph,
    kernel: &Kernel,
    socket: &SocketSpec,
    calib: &Calibration,
    policy: FusionPolicy,
) -> KernelEstimate {
    let flops = graph.subset_flops(&kernel.nodes);
    let traffic = graph.subset_boundary_bytes(&kernel.nodes);

    let efficiency = match policy {
        FusionPolicy::Spatial => calib.rdu_compute_efficiency,
        FusionPolicy::Unfused => calib.rdu_unfused_compute_efficiency,
    };
    let compute_time = flops / socket.peak_bf16().scale(efficiency);
    // Off-chip traffic streams from HBM when the socket has one; the SN10
    // ablation streams straight from DDR.
    let mem_bw = if socket.has_hbm() {
        socket.hbm.effective_bandwidth()
    } else {
        socket.ddr.effective_bandwidth()
    };
    let mem_time = traffic / mem_bw;

    // Pipeline fill: a spatial pipeline of S stages over T tiles runs for
    // (T + f*S) tile intervals instead of T (§III-A; validated against
    // sn-rdusim's PipelineSim).
    // Tiles: the longest stream through the pipeline — outputs and
    // streamed inputs (weight panels in a decode GEMM stream even though
    // the activation is a single row).
    let tiles = kernel
        .nodes
        .iter()
        .flat_map(|&n| {
            let node = graph.node(n);
            node.inputs
                .iter()
                .map(|&t| tile_count(&graph.tensor(t).shape))
                .chain(std::iter::once(tile_count(
                    &graph.tensor(node.output).shape,
                )))
                .collect::<Vec<_>>()
        })
        .max()
        .unwrap_or(1)
        .max(1);
    // Effective pipeline depth: a tile's latency through the pipeline is
    // the sum of per-stage service times, which for unbalanced stages is
    // much less than `stages x bottleneck`. Weight each stage by its share
    // of the bottleneck stage's work.
    let stage_flops: Vec<f64> = kernel
        .nodes
        .iter()
        .map(|&n| graph.node_flops(n).as_f64())
        .filter(|&f| f > 0.0)
        .collect();
    let max_stage = stage_flops.iter().copied().fold(0.0f64, f64::max);
    let effective_stages = if max_stage > 0.0 {
        (stage_flops.iter().sum::<f64>() / max_stage).max(1.0)
    } else {
        1.0
    };
    let fill_factor = match policy {
        FusionPolicy::Spatial => {
            (tiles as f64 + calib.pipeline_fill_tiles_per_stage * effective_stages) / tiles as f64
        }
        // Unfused kernels are one stage each; their fill is negligible
        // relative to the materialization traffic they already pay.
        FusionPolicy::Unfused => 1.0,
    };

    let core = compute_time.max(mem_time) * fill_factor;

    // Collectives: ring AllReduce moves 2(p-1)/p of the tensor over the
    // P2P links. Fused into a consuming pipeline, most of it hides behind
    // compute (§VII); standalone, it is fully exposed.
    let mut collective = TimeSecs::ZERO;
    for &nid in &kernel.nodes {
        if let OpKind::AllReduce { participants } = graph.node(nid).op {
            if participants > 1 {
                let bytes = graph.tensor(graph.node(nid).output).bytes();
                let factor = 2.0 * (participants as f64 - 1.0) / participants as f64;
                let wire = Bytes::new((bytes.as_f64() * factor) as u64) / socket.p2p_bandwidth;
                let exposed = match policy {
                    FusionPolicy::Spatial if kernel.nodes.len() > 1 => {
                        wire * (1.0 - calib.p2p_overlap)
                    }
                    _ => wire,
                };
                collective += exposed;
            }
        }
    }

    let time = core + collective;
    let bound = if collective > core {
        Bound::Collective
    } else if compute_time >= mem_time {
        Bound::Compute
    } else {
        Bound::Memory
    };
    KernelEstimate {
        time,
        bound,
        traffic,
        flops,
        collective,
        intensity: flops.intensity(traffic),
    }
}

/// Convenience: tiles per tensor row block (re-exported constant).
pub const fn tile_rows() -> usize {
    TILE_ROWS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, FusionPolicy};
    use sn_arch::{Calibration, SocketSpec};
    use sn_dataflow::monarch::monarch_fig3;
    use sn_dataflow::{BinaryKind, DType, GraphBuilder, OpKind, Shape, TensorKind};

    fn compiler() -> Compiler {
        Compiler::new(SocketSpec::sn40l(), Calibration::baseline())
    }

    #[test]
    fn fused_fig3_is_compute_bound_unfused_is_memory_bound() {
        // Table I's whole point: fusion moves the kernel across the
        // roofline knee.
        let g = monarch_fig3();
        let fused = compiler().compile(&g, FusionPolicy::Spatial).unwrap();
        assert_eq!(fused.estimates()[0].bound, Bound::Compute);
        let unfused = compiler().compile(&g, FusionPolicy::Unfused).unwrap();
        let memory_bound = unfused
            .estimates()
            .iter()
            .filter(|e| e.bound == Bound::Memory && e.flops.as_f64() > 0.0)
            .count();
        assert!(memory_bound >= 2, "most unfused FFT ops are memory bound");
    }

    #[test]
    fn fusion_speeds_up_execution() {
        let g = monarch_fig3();
        let fused = compiler().compile(&g, FusionPolicy::Spatial).unwrap();
        let unfused = compiler().compile(&g, FusionPolicy::Unfused).unwrap();
        let speedup = unfused.execution_time() / fused.execution_time();
        assert!(speedup > 2.0, "fusion speedup {speedup:.2}x");
    }

    #[test]
    fn memory_bound_kernel_time_tracks_bandwidth() {
        // A weight-streaming decode-style GEMM: time ~ bytes / HBM bw.
        let mut b = GraphBuilder::new("decode-gemm");
        let x = b.tensor("x", Shape::mat(1, 4096), DType::Bf16, TensorKind::Input);
        let w = b.tensor(
            "w",
            Shape::mat(4096, 11008),
            DType::Bf16,
            TensorKind::Weight,
        );
        let y = b
            .node("g", OpKind::Gemm { transpose_b: false }, &[x, w])
            .unwrap();
        b.mark_output(y);
        let g = b.build().unwrap();
        let exe = compiler().compile(&g, FusionPolicy::Spatial).unwrap();
        let e = exe.estimates()[0];
        assert_eq!(e.bound, Bound::Memory);
        let socket = SocketSpec::sn40l();
        let expect = Bytes::new(4096 * 11008 * 2) / socket.hbm.effective_bandwidth();
        let ratio = e.time.as_secs() / expect.as_secs();
        assert!(ratio > 0.99 && ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn standalone_allreduce_is_collective_bound() {
        let mut b = GraphBuilder::new("ar");
        let x = b.tensor("x", Shape::mat(1024, 1024), DType::Bf16, TensorKind::Input);
        let y = b
            .node("ar", OpKind::AllReduce { participants: 8 }, &[x])
            .unwrap();
        b.mark_output(y);
        let g = b.build().unwrap();
        let exe = compiler().compile(&g, FusionPolicy::Unfused).unwrap();
        assert_eq!(exe.estimates()[0].bound, Bound::Collective);
        assert!(exe.estimates()[0].collective > TimeSecs::ZERO);
    }

    #[test]
    fn fused_allreduce_mostly_hides() {
        let mk = |fuse: bool| {
            let mut b = GraphBuilder::new("ar");
            let x = b.tensor("x", Shape::mat(4096, 512), DType::Bf16, TensorKind::Input);
            let w = b.tensor("w", Shape::mat(512, 4096), DType::Bf16, TensorKind::Weight);
            let h = b
                .node("g", OpKind::Gemm { transpose_b: false }, &[x, w])
                .unwrap();
            let r = b
                .node("ar", OpKind::AllReduce { participants: 8 }, &[h])
                .unwrap();
            let y = b
                .node("add", OpKind::Binary(BinaryKind::Add), &[r, r])
                .unwrap();
            b.mark_output(y);
            let g = b.build().unwrap();
            let policy = if fuse {
                FusionPolicy::Spatial
            } else {
                FusionPolicy::Unfused
            };
            compiler().compile(&g, policy).unwrap()
        };
        let fused = mk(true);
        let unfused = mk(false);
        let fused_coll: TimeSecs = fused.estimates().iter().map(|e| e.collective).sum();
        let unfused_coll: TimeSecs = unfused.estimates().iter().map(|e| e.collective).sum();
        assert!(fused_coll.as_secs() < unfused_coll.as_secs() * 0.5);
    }
}
