//! Compiled kernels and the executable container.

use crate::estimate::KernelEstimate;
use crate::fusion::FusionPolicy;
use crate::memplan::MemoryPlan;
use crate::resources::{KernelResources, ResourceModel};
use serde::{Deserialize, Serialize};
use sn_arch::{Bytes, Flops, TimeSecs};
use sn_dataflow::intensity::KernelPartition;
use sn_dataflow::{Graph, NodeId};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Identifier of a kernel within one executable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KernelId(pub u32);

impl KernelId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One compiled kernel: a set of graph nodes mapped onto the tile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    pub id: KernelId,
    pub name: String,
    pub nodes: Vec<NodeId>,
    pub resources: KernelResources,
    /// Structural hash of the kernel's program: kernels from identical
    /// regions (e.g. identical decoder layers) share a signature and
    /// therefore a configuration bitstream — Program Load is paid once
    /// (§IV-D, §VI-B).
    pub program_signature: u64,
}

fn signature(graph: &Graph, nodes: &[NodeId]) -> u64 {
    let mut h = DefaultHasher::new();
    for &nid in nodes {
        let n = graph.node(nid);
        n.op.mnemonic().hash(&mut h);
        for &t in &n.inputs {
            graph.tensor(t).shape.dims().hash(&mut h);
            graph.tensor(t).dtype.size_bytes().hash(&mut h);
        }
        graph.tensor(n.output).shape.dims().hash(&mut h);
    }
    h.finish()
}

/// Builds kernel descriptors from a partition.
pub fn build_kernels(
    graph: &Graph,
    partition: &KernelPartition,
    model: &ResourceModel,
) -> Vec<Kernel> {
    partition
        .iter()
        .enumerate()
        .map(|(i, nodes)| {
            let first = graph.node(nodes[0]);
            let name = if nodes.len() == 1 {
                first.name.clone()
            } else {
                format!(
                    "fused[{}..{}]",
                    first.name,
                    graph.node(*nodes.last().expect("non-empty")).name
                )
            };
            Kernel {
                id: KernelId(i as u32),
                name,
                nodes: nodes.clone(),
                resources: model.kernel_resources(graph, nodes),
                program_signature: signature(graph, nodes),
            }
        })
        .collect()
}

/// A compiled program: kernels, their time estimates, and the memory plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Executable {
    name: String,
    policy: FusionPolicy,
    kernels: Vec<Kernel>,
    estimates: Vec<KernelEstimate>,
    memory: MemoryPlan,
}

impl Executable {
    pub(crate) fn new(
        name: String,
        policy: FusionPolicy,
        kernels: Vec<Kernel>,
        estimates: Vec<KernelEstimate>,
        memory: MemoryPlan,
    ) -> Self {
        assert_eq!(kernels.len(), estimates.len());
        Executable {
            name,
            policy,
            kernels,
            estimates,
            memory,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn policy(&self) -> FusionPolicy {
        self.policy
    }

    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    pub fn estimates(&self) -> &[KernelEstimate] {
        &self.estimates
    }

    pub fn memory(&self) -> &MemoryPlan {
        &self.memory
    }

    /// Number of kernel launches to run the program once.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Number of distinct kernel programs (shared signatures collapse).
    pub fn distinct_programs(&self) -> usize {
        let mut sigs: Vec<u64> = self.kernels.iter().map(|k| k.program_signature).collect();
        sigs.sort_unstable();
        sigs.dedup();
        sigs.len()
    }

    /// Pure execution time (no launch overheads): the sum of kernel
    /// estimates — kernels run back to back on the socket.
    pub fn execution_time(&self) -> TimeSecs {
        self.estimates.iter().map(|e| e.time).sum()
    }

    /// Total off-chip traffic of one execution.
    pub fn total_traffic(&self) -> Bytes {
        self.estimates.iter().map(|e| e.traffic).sum()
    }

    /// Total FLOPs of one execution.
    pub fn total_flops(&self) -> Flops {
        self.estimates.iter().map(|e| e.flops).sum()
    }

    /// A human-readable compilation report: per-kernel resources, bound,
    /// and time, plus totals — what a compiler's `--report` flag prints.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} [{:?}]: {} kernels, {} distinct programs",
            self.name,
            self.policy,
            self.kernel_count(),
            self.distinct_programs()
        );
        for (k, e) in self.kernels.iter().zip(&self.estimates) {
            let _ = writeln!(
                out,
                "  {:>4} {:<40} {:>4} PCUs {:>4} PMUs {:>9?} {:>12} {:>8.0} ops/B",
                format!("k{}", k.id.0),
                truncate(&k.name, 40),
                k.resources.pcus,
                k.resources.pmus,
                e.bound,
                e.time.to_string(),
                e.intensity
            );
        }
        let _ = writeln!(
            out,
            "  total: {} exec, {} off-chip, {}",
            self.execution_time(),
            self.total_traffic(),
            self.total_flops()
        );
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Compiler, FusionPolicy};
    use sn_arch::{Calibration, SocketSpec};
    use sn_dataflow::{DType, GraphBuilder, OpKind, Shape, TensorKind, UnaryKind};

    fn layered_graph(layers: u32) -> Graph {
        let mut b = GraphBuilder::new("layers");
        let mut cur = b.tensor("x", Shape::mat(256, 256), DType::Bf16, TensorKind::Input);
        for l in 0..layers {
            b.set_region(l);
            let w = b.tensor("w", Shape::mat(256, 256), DType::Bf16, TensorKind::Weight);
            cur = b
                .node("proj", OpKind::Gemm { transpose_b: false }, &[cur, w])
                .unwrap();
            cur = b
                .node("act", OpKind::Unary(UnaryKind::Gelu), &[cur])
                .unwrap();
        }
        b.mark_output(cur);
        b.build().unwrap()
    }

    #[test]
    fn identical_layers_share_a_program() {
        let g = layered_graph(8);
        let c = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
        let exe = c.compile(&g, FusionPolicy::Spatial).unwrap();
        assert_eq!(exe.kernel_count(), 8, "one kernel per layer region");
        assert_eq!(
            exe.distinct_programs(),
            1,
            "identical layers share the bitstream"
        );
    }

    #[test]
    fn unfused_has_more_launches() {
        let g = layered_graph(4);
        let c = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
        let fused = c.compile(&g, FusionPolicy::Spatial).unwrap();
        let unfused = c.compile(&g, FusionPolicy::Unfused).unwrap();
        assert!(unfused.kernel_count() > fused.kernel_count());
        assert_eq!(unfused.kernel_count(), g.node_count());
    }

    #[test]
    fn fused_traffic_is_lower() {
        let g = layered_graph(4);
        let c = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
        let fused = c.compile(&g, FusionPolicy::Spatial).unwrap();
        let unfused = c.compile(&g, FusionPolicy::Unfused).unwrap();
        assert!(fused.total_traffic() < unfused.total_traffic());
        // FLOPs are policy-invariant.
        assert!((fused.total_flops().as_f64() - unfused.total_flops().as_f64()).abs() < 1.0);
    }
}
