//! The fusion pass: groups operators into spatially fused kernels.
//!
//! Streaming dataflow fuses operators with *arbitrary* access patterns —
//! transposes and shuffles included — limited only by on-chip resources
//! (§III-A). The pass walks the topological order greedily, growing the
//! current kernel until the next node would exceed the PCU/PMU budget or
//! cross a region boundary (a transformer layer); identical regions then
//! reuse one kernel program, which is what lets hardware orchestration run
//! a whole decoder with near-zero launch overhead (§VI-B).

use crate::resources::ResourceModel;
use crate::CompileError;
use serde::{Deserialize, Serialize};
use sn_dataflow::intensity::KernelPartition;
use sn_dataflow::{Graph, NodeId};

/// How aggressively to fuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FusionPolicy {
    /// One kernel per operator, intermediates materialized off-chip —
    /// the paper's "Unfused" baseline configuration (§VI-A).
    Unfused,
    /// Greedy maximal spatial fusion under resource constraints.
    Spatial,
}

/// Partitions the graph into kernels under the policy.
///
/// # Errors
///
/// [`CompileError::OperatorTooLarge`] if a single node exceeds the socket
/// budget by itself.
pub fn partition(
    graph: &Graph,
    policy: FusionPolicy,
    model: &ResourceModel,
) -> Result<KernelPartition, CompileError> {
    // Validate individual operators first: they must fit even unfused.
    for nid in graph.node_ids() {
        let r = model.node_resources(graph, nid);
        if !model.fits(r) {
            let n = graph.node(nid);
            return Err(CompileError::OperatorTooLarge {
                node: n.name.clone(),
                pcus: r.pcus,
                pmus: r.pmus,
            });
        }
    }
    match policy {
        FusionPolicy::Unfused => Ok(graph.node_ids().map(|n| vec![n]).collect()),
        FusionPolicy::Spatial => Ok(spatial_partition(graph, model)),
    }
}

fn spatial_partition(graph: &Graph, model: &ResourceModel) -> KernelPartition {
    let mut kernels: KernelPartition = Vec::new();
    let mut current: Vec<NodeId> = Vec::new();
    let mut current_region: Option<u32> = None;
    for nid in graph.node_ids() {
        let region = graph.node(nid).region;
        let region_break = current_region.is_some_and(|r| r != region);
        let mut candidate = current.clone();
        candidate.push(nid);
        let fits = model.fits(model.kernel_resources(graph, &candidate));
        if (region_break || !fits) && !current.is_empty() {
            kernels.push(std::mem::take(&mut current));
        }
        current.push(nid);
        current_region = Some(region);
    }
    if !current.is_empty() {
        kernels.push(current);
    }
    kernels
}

#[cfg(test)]
mod tests {
    use super::*;
    use sn_arch::SocketSpec;
    use sn_dataflow::intensity::is_valid_partition;
    use sn_dataflow::monarch::{flash_fft_conv, monarch_fig3};
    use sn_dataflow::{DType, GraphBuilder, OpKind, Shape, TensorKind, UnaryKind};

    fn model() -> ResourceModel {
        ResourceModel::new(&SocketSpec::sn40l())
    }

    #[test]
    fn unfused_gives_one_kernel_per_op() {
        let g = monarch_fig3();
        let p = partition(&g, FusionPolicy::Unfused, &model()).unwrap();
        assert_eq!(p.len(), g.node_count());
        assert!(is_valid_partition(&g, &p));
    }

    #[test]
    fn fig3_fuses_fully() {
        let g = monarch_fig3();
        let p = partition(&g, FusionPolicy::Spatial, &model()).unwrap();
        assert_eq!(p.len(), 1, "the whole Monarch example is one kernel");
    }

    #[test]
    fn fftconv_fuses_to_single_kernel() {
        // §VI-A: "the entire FlashFFTConv benchmark is executed with a
        // single kernel launch".
        let g = flash_fft_conv(8, 32, 3);
        let p = partition(&g, FusionPolicy::Spatial, &model()).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn region_boundaries_split_kernels() {
        let mut b = GraphBuilder::new("layers");
        let x = b.tensor("x", Shape::mat(64, 64), DType::Bf16, TensorKind::Input);
        let mut cur = x;
        for layer in 0..4 {
            b.set_region(layer);
            cur = b.node("a", OpKind::Unary(UnaryKind::Gelu), &[cur]).unwrap();
            cur = b.node("b", OpKind::Unary(UnaryKind::Neg), &[cur]).unwrap();
        }
        b.mark_output(cur);
        let g = b.build().unwrap();
        let p = partition(&g, FusionPolicy::Spatial, &model()).unwrap();
        assert_eq!(
            p.len(),
            4,
            "one kernel per region even though all would fit"
        );
        assert!(is_valid_partition(&g, &p));
    }

    #[test]
    fn resource_pressure_splits_kernels() {
        // Chain enough big GEMMs in one region to exceed the PCU budget.
        let mut b = GraphBuilder::new("big");
        let mut cur = b.tensor("x", Shape::mat(4096, 4096), DType::Bf16, TensorKind::Input);
        for i in 0..8 {
            let w = b.tensor(
                format!("w{i}"),
                Shape::mat(4096, 4096),
                DType::Bf16,
                TensorKind::Weight,
            );
            cur = b
                .node(
                    format!("g{i}"),
                    OpKind::Gemm { transpose_b: false },
                    &[cur, w],
                )
                .unwrap();
        }
        b.mark_output(cur);
        let g = b.build().unwrap();
        let m = model();
        let p = partition(&g, FusionPolicy::Spatial, &m).unwrap();
        assert!(p.len() > 1, "eight 256-PCU GEMMs cannot share one socket");
        for k in &p {
            assert!(
                m.fits(m.kernel_resources(&g, k)),
                "every kernel respects the budget"
            );
        }
    }

    #[test]
    fn pathological_operator_is_rejected_up_front() {
        // A single operator whose stage buffer alone outgrows every PMU on
        // the socket can never map; the compiler reports it instead of
        // producing an unmappable kernel.
        let mut b = GraphBuilder::new("giant");
        let x = b.tensor(
            "x",
            Shape::mat(128, 3_000_000_000),
            DType::Bf16,
            TensorKind::Input,
        );
        let y = b.node("act", OpKind::Unary(UnaryKind::Gelu), &[x]).unwrap();
        b.mark_output(y);
        let g = b.build().unwrap();
        let err = partition(&g, FusionPolicy::Spatial, &model());
        assert!(
            matches!(err, Err(crate::CompileError::OperatorTooLarge { .. })),
            "expected OperatorTooLarge, got {err:?}"
        );
    }

    #[test]
    fn spatial_never_exceeds_budget() {
        let g = flash_fft_conv(16, 32, 3);
        let m = model();
        for k in partition(&g, FusionPolicy::Spatial, &m).unwrap() {
            assert!(m.fits(m.kernel_resources(&g, &k)));
        }
    }
}
