//! Property-based fuzzing of the whole compilation pipeline: arbitrary
//! well-formed graphs must compile under both policies with valid
//! partitions, finite estimates, and non-aliasing memory plans.

use proptest::prelude::*;
use sn_arch::{Calibration, SocketSpec};
use sn_compiler::{Compiler, FusionPolicy};
use sn_dataflow::intensity::is_valid_partition;
use sn_dataflow::{
    BinaryKind, DType, Graph, GraphBuilder, OpKind, Shape, TensorId, TensorKind, UnaryKind,
};

/// A compact recipe for one random node.
#[derive(Debug, Clone)]
enum Step {
    Gemm { cols: usize },
    Unary(u8),
    BinarySelf(u8),
    Transpose,
    RowLocal(u8),
    Region,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1usize..6).prop_map(|c| Step::Gemm { cols: c * 32 }),
        (0u8..4).prop_map(Step::Unary),
        (0u8..3).prop_map(Step::BinarySelf),
        Just(Step::Transpose),
        (0u8..3).prop_map(Step::RowLocal),
        Just(Step::Region),
    ]
}

/// Builds a well-formed chain graph from the recipe. Dimensions stay
/// small so the fuzz loop is fast.
fn build_graph(rows: usize, cols0: usize, steps: &[Step]) -> Graph {
    let mut b = GraphBuilder::new("fuzz");
    let mut cur: TensorId = b.tensor("x", Shape::mat(rows, cols0), DType::Bf16, TensorKind::Input);
    let mut region = 0u32;
    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Gemm { cols } => {
                let k = last_inner(&b, cur);
                let w = b.tensor(
                    format!("w{i}"),
                    Shape::mat(k, *cols),
                    DType::Bf16,
                    TensorKind::Weight,
                );
                cur = b
                    .node(
                        format!("gemm{i}"),
                        OpKind::Gemm { transpose_b: false },
                        &[cur, w],
                    )
                    .expect("gemm builds");
            }
            Step::Unary(u) => {
                let kind = [
                    UnaryKind::Gelu,
                    UnaryKind::Silu,
                    UnaryKind::Neg,
                    UnaryKind::Scale,
                ][*u as usize % 4];
                cur = b
                    .node(format!("un{i}"), OpKind::Unary(kind), &[cur])
                    .expect("unary builds");
            }
            Step::BinarySelf(k) => {
                let kind = [BinaryKind::Add, BinaryKind::Mul, BinaryKind::Max][*k as usize % 3];
                cur = b
                    .node(format!("bin{i}"), OpKind::Binary(kind), &[cur, cur])
                    .expect("binary builds");
            }
            Step::Transpose => {
                cur = b
                    .node(
                        format!("tr{i}"),
                        OpKind::Transpose { perm: vec![1, 0] },
                        &[cur],
                    )
                    .expect("transpose builds");
            }
            Step::RowLocal(k) => {
                let op =
                    [OpKind::Softmax, OpKind::RmsNorm, OpKind::LayerNorm][*k as usize % 3].clone();
                cur = b
                    .node(format!("rl{i}"), op, &[cur])
                    .expect("rowlocal builds");
            }
            Step::Region => {
                region += 1;
                b.set_region(region);
            }
        }
    }
    if b.node_count() == 0 {
        // A recipe of only region markers adds no operators.
        cur = b
            .node("tail", OpKind::Unary(UnaryKind::Neg), &[cur])
            .expect("unary builds");
    }
    b.mark_output(cur);
    b.build().expect("non-empty")
}

/// Inner dimension of the running tensor.
fn last_inner(b: &GraphBuilder, cur: TensorId) -> usize {
    b.shape_of(cur).inner()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_chain_compiles_under_both_policies(
        rows in 1usize..512,
        cols0 in (1usize..8).prop_map(|c| c * 32),
        steps in proptest::collection::vec(step_strategy(), 1..24),
    ) {
        let graph = build_graph(rows, cols0, &steps);
        let compiler = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
        for policy in [FusionPolicy::Unfused, FusionPolicy::Spatial] {
            let exe = compiler.compile(&graph, policy).expect("compiles");
            // Partition covers every node exactly once.
            let partition: Vec<Vec<_>> =
                exe.kernels().iter().map(|k| k.nodes.clone()).collect();
            prop_assert!(is_valid_partition(&graph, &partition));
            // Estimates are finite and non-negative.
            for e in exe.estimates() {
                prop_assert!(e.time.as_secs().is_finite());
                prop_assert!(e.time.as_secs() >= 0.0);
                prop_assert!(e.traffic.as_u64() < u64::MAX / 2);
            }
            // Memory placements never alias while simultaneously live.
            let ps = exe.memory().placements();
            for (i, a) in ps.iter().enumerate() {
                for b2 in &ps[i + 1..] {
                    if a.tier != b2.tier || a.offset == u64::MAX || b2.offset == u64::MAX {
                        continue;
                    }
                    let addr = a.offset < b2.offset + b2.bytes.as_u64()
                        && b2.offset < a.offset + a.bytes.as_u64();
                    let life = a.lifetime.0 <= b2.lifetime.1 && b2.lifetime.0 <= a.lifetime.1;
                    prop_assert!(!(addr && life), "aliasing placements");
                }
            }
        }
    }

    #[test]
    fn fusion_never_increases_traffic(
        rows in 16usize..256,
        steps in proptest::collection::vec(step_strategy(), 1..16),
    ) {
        let graph = build_graph(rows, 64, &steps);
        let compiler = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
        let fused = compiler.compile(&graph, FusionPolicy::Spatial).expect("compiles");
        let unfused = compiler.compile(&graph, FusionPolicy::Unfused).expect("compiles");
        prop_assert!(fused.total_traffic() <= unfused.total_traffic());
        prop_assert!(fused.kernel_count() <= unfused.kernel_count());
    }
}
