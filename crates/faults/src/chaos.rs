//! Chaos scenarios: faults that strike *when it hurts*.
//!
//! [`FaultPlan`](crate::FaultPlan) injects stationary noise — every draw
//! sees the same rates. Real incidents are not stationary: a link
//! congests during the peak burst, two nodes in one rack die together
//! mid-traffic-spike. [`ChaosSchedule`] layers that structure on top of
//! the plan:
//!
//! - [`FaultWindow`]: a [`FaultSpec`] active only inside a model-time
//!   window, with its own seeded draw stream (keyed exactly like plan
//!   streams, so chaos draws never perturb plan draws).
//! - [`NodeOutage`]: a *correlated* crash — a set of nodes goes down
//!   together at one instant and (optionally) comes back together.
//!
//! Everything is model time and pure bookkeeping: a serving engine asks
//! [`ChaosSchedule::decide`] at wave boundaries and applies
//! [`ChaosSchedule::events`] itself, so runs stay byte-reproducible.

use crate::plan::{unit_draw, FaultDecision, FaultSite, FaultSpec};
use serde::{Deserialize, Serialize};
use sn_arch::TimeSecs;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fault spec that is live only inside `[start, end)` of model time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// The operation site the windowed spec applies to.
    pub site: FaultSite,
    /// Rates in force while the window is active.
    pub spec: FaultSpec,
    /// Window opens (inclusive).
    pub start: TimeSecs,
    /// Window closes (exclusive).
    pub end: TimeSecs,
}

impl FaultWindow {
    /// True when `t` falls inside the half-open window.
    pub fn is_active_at(&self, t: TimeSecs) -> bool {
        self.start <= t && t < self.end
    }
}

/// A correlated outage: `nodes` crash together at `start`; with an `end`
/// they are restored together, without one they stay down.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeOutage {
    /// Crashed node indices (stored sorted and deduplicated).
    pub nodes: Vec<usize>,
    /// Crash instant.
    pub start: TimeSecs,
    /// Restore instant, or `None` for a permanent outage.
    pub end: Option<TimeSecs>,
}

/// What happens to one node at one instant of a chaos timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosEventKind {
    /// The node goes down.
    Crash,
    /// The node comes back.
    Restore,
}

/// One entry of the flattened, time-ordered chaos timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// When the event fires (model time).
    pub at: TimeSecs,
    /// The node it targets.
    pub node: usize,
    /// Crash or restore.
    pub kind: ChaosEventKind,
}

/// A deterministic chaos scenario: windowed fault specs plus correlated
/// node outages, all in model time.
///
/// Windowed draws are pure functions of `(seed, window index, draw
/// index)` — the same keying discipline as `FaultPlan`, on an
/// independent seed — so consulting the schedule never consumes or
/// perturbs a plan draw and replays are exact.
#[derive(Debug)]
pub struct ChaosSchedule {
    seed: u64,
    windows: Vec<FaultWindow>,
    outages: Vec<NodeOutage>,
    /// Per-window draw cursors (atomic so `&self` decide works behind
    /// shared handles, like `FaultPlan`).
    draws: Vec<AtomicU64>,
}

impl ChaosSchedule {
    /// An empty scenario: no windows, no outages.
    pub fn new(seed: u64) -> Self {
        ChaosSchedule {
            seed,
            windows: Vec::new(),
            outages: Vec::new(),
            draws: Vec::new(),
        }
    }

    /// Builder-style: adds a windowed fault spec.
    ///
    /// # Panics
    ///
    /// Panics on invalid rates (see [`FaultSpec`] validation) or a
    /// window that never opens (`end <= start`).
    pub fn with_window(
        mut self,
        site: FaultSite,
        spec: FaultSpec,
        start: TimeSecs,
        end: TimeSecs,
    ) -> Self {
        spec.validate(site);
        assert!(start < end, "chaos window never opens: {start} >= {end}");
        self.windows.push(FaultWindow {
            site,
            spec,
            start,
            end,
        });
        self.draws.push(AtomicU64::new(0));
        self
    }

    /// Builder-style: adds a correlated outage of `nodes` over
    /// `[start, end)` (`end = None` keeps them down forever).
    ///
    /// # Panics
    ///
    /// Panics on an empty node set or a restore at/before the crash.
    pub fn with_outage(mut self, nodes: &[usize], start: TimeSecs, end: Option<TimeSecs>) -> Self {
        assert!(!nodes.is_empty(), "an outage needs at least one node");
        if let Some(e) = end {
            assert!(start < e, "outage restored before it began");
        }
        let mut nodes = nodes.to_vec();
        nodes.sort_unstable();
        nodes.dedup();
        self.outages.push(NodeOutage { nodes, start, end });
        self
    }

    /// True when the scenario injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.outages.is_empty()
    }

    /// The configured windows, in declaration order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// The configured outages, in declaration order.
    pub fn outages(&self) -> &[NodeOutage] {
        &self.outages
    }

    /// The flattened crash/restore timeline, sorted by time (crashes
    /// before restores at an equal instant, then by node index) so a
    /// driver can apply it with a single cursor.
    pub fn events(&self) -> Vec<ChaosEvent> {
        let mut events = Vec::new();
        for outage in &self.outages {
            for &node in &outage.nodes {
                events.push(ChaosEvent {
                    at: outage.start,
                    node,
                    kind: ChaosEventKind::Crash,
                });
                if let Some(end) = outage.end {
                    events.push(ChaosEvent {
                        at: end,
                        node,
                        kind: ChaosEventKind::Restore,
                    });
                }
            }
        }
        events.sort_by(|a, b| {
            a.at.as_secs()
                .total_cmp(&b.at.as_secs())
                .then_with(|| {
                    (a.kind == ChaosEventKind::Restore).cmp(&(b.kind == ChaosEventKind::Restore))
                })
                .then_with(|| a.node.cmp(&b.node))
        });
        events
    }

    /// Consults the windowed specs for `site` at model time `t`,
    /// consuming one draw of the first active window's stream. Returns
    /// [`FaultDecision::Ok`] (without consuming anything) when no window
    /// for the site is open — outside its window a spec does not exist.
    pub fn decide(&self, site: FaultSite, t: TimeSecs) -> FaultDecision {
        for (i, w) in self.windows.iter().enumerate() {
            if w.site != site || !w.is_active_at(t) {
                continue;
            }
            let n = self.draws[i].fetch_add(1, Ordering::Relaxed);
            let u = unit_draw(self.seed ^ CHAOS_STREAM_SALT, i as u64, n);
            return if u < w.spec.fail_rate {
                FaultDecision::Fail
            } else if u < w.spec.fail_rate + w.spec.slow_rate {
                FaultDecision::Slow(w.spec.slow_factor)
            } else {
                FaultDecision::Ok
            };
        }
        FaultDecision::Ok
    }

    /// Rewinds every window's draw stream so a fresh run replays the
    /// exact chaos sequence.
    pub fn reset(&self) {
        for d in &self.draws {
            d.store(0, Ordering::Relaxed);
        }
    }
}

/// Salt separating chaos-window streams from plan streams that happen to
/// share a seed.
const CHAOS_STREAM_SALT: u64 = 0x5c3a_05c4_ed01_e77a;

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> TimeSecs {
        TimeSecs::from_millis(v)
    }

    #[test]
    fn windows_are_half_open() {
        let w = FaultWindow {
            site: FaultSite::SocketLink,
            spec: FaultSpec::slow(1.0, 2.0),
            start: ms(10.0),
            end: ms(20.0),
        };
        assert!(!w.is_active_at(ms(9.999)));
        assert!(w.is_active_at(ms(10.0)));
        assert!(w.is_active_at(ms(19.999)));
        assert!(!w.is_active_at(ms(20.0)));
    }

    #[test]
    fn decide_fires_only_inside_the_window() {
        let chaos = ChaosSchedule::new(11).with_window(
            FaultSite::SocketLink,
            FaultSpec::slow(1.0, 3.0),
            ms(10.0),
            ms(20.0),
        );
        assert_eq!(
            chaos.decide(FaultSite::SocketLink, ms(5.0)),
            FaultDecision::Ok
        );
        assert_eq!(
            chaos.decide(FaultSite::SocketLink, ms(15.0)),
            FaultDecision::Slow(3.0)
        );
        // Other sites never see this window.
        assert_eq!(
            chaos.decide(FaultSite::ExpertLoad, ms(15.0)),
            FaultDecision::Ok
        );
        assert_eq!(
            chaos.decide(FaultSite::SocketLink, ms(25.0)),
            FaultDecision::Ok
        );
    }

    #[test]
    fn windowed_draws_replay_after_reset() {
        let make = || {
            ChaosSchedule::new(42).with_window(
                FaultSite::SocketLink,
                FaultSpec::failing(0.5),
                TimeSecs::ZERO,
                ms(100.0),
            )
        };
        let a = make();
        let first: Vec<FaultDecision> = (0..64)
            .map(|_| a.decide(FaultSite::SocketLink, ms(1.0)))
            .collect();
        assert!(first.contains(&FaultDecision::Fail));
        assert!(first.contains(&FaultDecision::Ok));
        let b = make();
        let again: Vec<FaultDecision> = (0..64)
            .map(|_| b.decide(FaultSite::SocketLink, ms(1.0)))
            .collect();
        assert_eq!(first, again);
        a.reset();
        let replay: Vec<FaultDecision> = (0..64)
            .map(|_| a.decide(FaultSite::SocketLink, ms(1.0)))
            .collect();
        assert_eq!(first, replay);
    }

    #[test]
    fn correlated_outage_flattens_to_a_sorted_timeline() {
        let chaos = ChaosSchedule::new(0)
            .with_outage(&[3, 1], ms(50.0), Some(ms(80.0)))
            .with_outage(&[0], ms(20.0), None);
        let events = chaos.events();
        assert_eq!(events.len(), 5);
        assert_eq!(
            events[0],
            ChaosEvent {
                at: ms(20.0),
                node: 0,
                kind: ChaosEventKind::Crash
            }
        );
        // The correlated pair crashes at the same instant, node-ordered.
        assert_eq!(events[1].at, ms(50.0));
        assert_eq!((events[1].node, events[1].kind), (1, ChaosEventKind::Crash));
        assert_eq!((events[2].node, events[2].kind), (3, ChaosEventKind::Crash));
        // ... and restores together.
        assert_eq!(
            (events[3].node, events[3].kind),
            (1, ChaosEventKind::Restore)
        );
        assert_eq!(
            (events[4].node, events[4].kind),
            (3, ChaosEventKind::Restore)
        );
    }

    #[test]
    fn crashes_precede_restores_at_an_equal_instant() {
        let chaos = ChaosSchedule::new(0)
            .with_outage(&[0], ms(10.0), Some(ms(20.0)))
            .with_outage(&[1], ms(20.0), None);
        let events = chaos.events();
        assert_eq!((events[1].node, events[1].kind), (1, ChaosEventKind::Crash));
        assert_eq!(
            (events[2].node, events[2].kind),
            (0, ChaosEventKind::Restore)
        );
    }

    #[test]
    #[should_panic(expected = "invalid fault rates")]
    fn windowed_specs_are_validated() {
        let _ = ChaosSchedule::new(0).with_window(
            FaultSite::SocketLink,
            FaultSpec {
                fail_rate: 0.9,
                slow_rate: 0.9,
                slow_factor: 2.0,
            },
            TimeSecs::ZERO,
            ms(1.0),
        );
    }

    #[test]
    #[should_panic(expected = "never opens")]
    fn empty_windows_are_rejected() {
        let _ = ChaosSchedule::new(0).with_window(
            FaultSite::SocketLink,
            FaultSpec::failing(0.1),
            ms(5.0),
            ms(5.0),
        );
    }

    #[test]
    #[should_panic(expected = "restored before it began")]
    fn inverted_outages_are_rejected() {
        let _ = ChaosSchedule::new(0).with_outage(&[0], ms(5.0), Some(ms(4.0)));
    }
}
