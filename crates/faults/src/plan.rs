//! Seeded per-site fault schedules.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// An operation site where the stack consults the fault plan.
///
/// Each site owns an independent deterministic draw stream: injecting
/// faults at one site never perturbs the decisions another site sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// A DMA transfer between memory tiers (`sn-memsim`'s `DmaEngine`).
    DmaTransfer,
    /// A kernel execution pass over the socket fabric (`NodeExecutor`).
    SocketLink,
    /// An expert weight load DDR→HBM (`CoeRuntime::activate`).
    ExpertLoad,
    /// A router classification pass (`SambaCoeNode` serving).
    RouterDecision,
    /// A whole node dropping out of a cluster mid-batch (`CoeCluster`).
    NodeFailure,
}

impl FaultSite {
    pub const ALL: [FaultSite; 5] = [
        FaultSite::DmaTransfer,
        FaultSite::SocketLink,
        FaultSite::ExpertLoad,
        FaultSite::RouterDecision,
        FaultSite::NodeFailure,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            FaultSite::DmaTransfer => 0,
            FaultSite::SocketLink => 1,
            FaultSite::ExpertLoad => 2,
            FaultSite::RouterDecision => 3,
            FaultSite::NodeFailure => 4,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            FaultSite::DmaTransfer => "dma-transfer",
            FaultSite::SocketLink => "socket-link",
            FaultSite::ExpertLoad => "expert-load",
            FaultSite::RouterDecision => "router-decision",
            FaultSite::NodeFailure => "node-failure",
        }
    }
}

/// Fault probabilities for one site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Probability an operation fails outright (corrupt load, dropped
    /// socket, dead node) and must be retried or failed over.
    pub fail_rate: f64,
    /// Probability an operation completes but degraded (link congestion,
    /// thermal throttling): it takes `slow_factor` times as long.
    pub slow_rate: f64,
    /// Latency multiplier applied on a slowdown draw.
    pub slow_factor: f64,
}

impl FaultSpec {
    /// No faults at this site.
    pub const NONE: FaultSpec = FaultSpec {
        fail_rate: 0.0,
        slow_rate: 0.0,
        slow_factor: 1.0,
    };

    /// Outright failures only.
    ///
    /// # Panics
    ///
    /// Panics when `fail_rate` is outside `[0, 1]` (including NaN): a
    /// probability typo should explode at construction, not silently
    /// skew a chaos experiment.
    pub fn failing(fail_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fail_rate),
            "invalid fault rates: fail_rate {fail_rate} outside [0, 1]"
        );
        FaultSpec {
            fail_rate,
            slow_rate: 0.0,
            slow_factor: 1.0,
        }
    }

    /// Slowdowns only.
    ///
    /// # Panics
    ///
    /// Panics when `slow_rate` is outside `[0, 1]` or `slow_factor` is
    /// below 1 (a "slowdown" that speeds things up is a typo).
    pub fn slow(slow_rate: f64, slow_factor: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&slow_rate),
            "invalid fault rates: slow_rate {slow_rate} outside [0, 1]"
        );
        assert!(
            slow_factor >= 1.0,
            "slow_factor must be >= 1.0, got {slow_factor}"
        );
        FaultSpec {
            fail_rate: 0.0,
            slow_rate,
            slow_factor,
        }
    }

    pub(crate) fn validate(&self, site: FaultSite) {
        assert!(
            (0.0..=1.0).contains(&self.fail_rate)
                && (0.0..=1.0).contains(&self.slow_rate)
                && self.fail_rate + self.slow_rate <= 1.0,
            "invalid fault rates for {}: fail {} slow {}",
            site.name(),
            self.fail_rate,
            self.slow_rate,
        );
        assert!(self.slow_factor >= 1.0, "slow_factor must be >= 1.0");
    }

    fn is_none(&self) -> bool {
        self.fail_rate == 0.0 && self.slow_rate == 0.0
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::NONE
    }
}

/// The outcome of consulting the plan at one operation site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    /// The operation proceeds normally.
    Ok,
    /// The operation completes but takes `factor` times as long.
    Slow(f64),
    /// The operation fails and must be retried or failed over.
    Fail,
}

/// Per-site draw statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteStats {
    /// Operations that consulted this site.
    pub draws: u64,
    /// Injected outright failures.
    pub failures: u64,
    /// Injected slowdowns.
    pub slowdowns: u64,
}

/// Statistics across all sites, in [`FaultSite::ALL`] order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    pub per_site: [SiteStats; 5],
}

impl FaultStats {
    pub fn site(&self, site: FaultSite) -> SiteStats {
        self.per_site[site.index()]
    }

    pub fn total_failures(&self) -> u64 {
        self.per_site.iter().map(|s| s.failures).sum()
    }

    pub fn total_slowdowns(&self) -> u64 {
        self.per_site.iter().map(|s| s.slowdowns).sum()
    }
}

/// A deterministic, seeded fault schedule.
///
/// Decisions are pure functions of `(seed, site, site-local draw index)`,
/// hashed through splitmix64: the n-th consultation of a given site
/// always yields the same decision for a given seed, independent of what
/// other sites do in between. Shared across the stack behind an
/// `Arc<FaultPlan>`; the draw counters use atomics so `&self` methods
/// work from the immutable handles components hold.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    specs: [FaultSpec; 5],
    draws: [AtomicU64; 5],
    failures: [AtomicU64; 5],
    slowdowns: [AtomicU64; 5],
}

impl FaultPlan {
    /// A plan injecting nothing (all rates zero). Useful as the explicit
    /// "faults disabled" baseline: consulting it is side-effect-free on
    /// timing, and reports come out bit-identical to no plan at all.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: [FaultSpec::NONE; 5],
            draws: Default::default(),
            failures: Default::default(),
            slowdowns: Default::default(),
        }
    }

    /// Builder-style: sets the spec for one site.
    ///
    /// # Panics
    ///
    /// Panics when rates are outside `[0, 1]`, sum above 1, or the
    /// slowdown factor is below 1.
    pub fn with_site(mut self, site: FaultSite, spec: FaultSpec) -> Self {
        spec.validate(site);
        self.specs[site.index()] = spec;
        self
    }

    /// A plan failing every site at the same rate (no slowdowns).
    ///
    /// # Panics
    ///
    /// Panics when `fail_rate` is outside `[0, 1]`, like
    /// [`FaultSpec::failing`].
    pub fn uniform(seed: u64, fail_rate: f64) -> Self {
        let mut plan = FaultPlan::new(seed);
        for site in FaultSite::ALL {
            plan = plan.with_site(site, FaultSpec::failing(fail_rate));
        }
        plan
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn spec(&self, site: FaultSite) -> FaultSpec {
        self.specs[site.index()]
    }

    /// True when no site can ever inject anything.
    pub fn is_zero(&self) -> bool {
        self.specs.iter().all(|s| s.is_none())
    }

    /// Consults the plan at one site, consuming one draw of that site's
    /// stream.
    pub fn decide(&self, site: FaultSite) -> FaultDecision {
        let i = site.index();
        let spec = self.specs[i];
        let n = self.draws[i].fetch_add(1, Ordering::Relaxed);
        if spec.is_none() {
            return FaultDecision::Ok;
        }
        let u = unit_draw(self.seed, i as u64, n);
        if u < spec.fail_rate {
            self.failures[i].fetch_add(1, Ordering::Relaxed);
            FaultDecision::Fail
        } else if u < spec.fail_rate + spec.slow_rate {
            self.slowdowns[i].fetch_add(1, Ordering::Relaxed);
            FaultDecision::Slow(spec.slow_factor)
        } else {
            FaultDecision::Ok
        }
    }

    /// Cumulative draw statistics.
    pub fn stats(&self) -> FaultStats {
        let mut stats = FaultStats::default();
        for i in 0..5 {
            stats.per_site[i] = SiteStats {
                draws: self.draws[i].load(Ordering::Relaxed),
                failures: self.failures[i].load(Ordering::Relaxed),
                slowdowns: self.slowdowns[i].load(Ordering::Relaxed),
            };
        }
        stats
    }

    /// Rewinds every site's draw stream to the beginning (and zeroes the
    /// statistics), so a fresh run over the same plan replays the exact
    /// fault sequence.
    pub fn reset(&self) {
        for i in 0..5 {
            self.draws[i].store(0, Ordering::Relaxed);
            self.failures[i].store(0, Ordering::Relaxed);
            self.slowdowns[i].store(0, Ordering::Relaxed);
        }
    }
}

/// Hash `(seed, site, draw index)` to a uniform draw in `[0, 1)`.
/// Shared with the chaos scheduler (`crate::chaos`), which keys its
/// window streams the same way so chaos draws never perturb plan draws.
pub(crate) fn unit_draw(seed: u64, site: u64, n: u64) -> f64 {
    let mut z = seed
        .wrapping_add(site.wrapping_mul(0xA076_1D64_78BD_642F))
        .wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_never_injects() {
        let plan = FaultPlan::new(7);
        assert!(plan.is_zero());
        for _ in 0..1000 {
            assert_eq!(plan.decide(FaultSite::DmaTransfer), FaultDecision::Ok);
        }
        assert_eq!(plan.stats().total_failures(), 0);
    }

    #[test]
    fn same_seed_replays_the_same_sequence() {
        let draw_all = |plan: &FaultPlan| -> Vec<FaultDecision> {
            (0..256)
                .map(|_| plan.decide(FaultSite::ExpertLoad))
                .collect()
        };
        let a = FaultPlan::new(42).with_site(FaultSite::ExpertLoad, FaultSpec::failing(0.3));
        let b = FaultPlan::new(42).with_site(FaultSite::ExpertLoad, FaultSpec::failing(0.3));
        let first = draw_all(&a);
        assert_eq!(first, draw_all(&b));
        // Reset rewinds to the identical stream.
        a.reset();
        assert_eq!(draw_all(&a), first);
    }

    #[test]
    fn sites_draw_independent_streams() {
        // Interleaving extra draws on one site must not change another
        // site's decisions.
        let plan = |seed| {
            FaultPlan::new(seed)
                .with_site(FaultSite::ExpertLoad, FaultSpec::failing(0.5))
                .with_site(FaultSite::DmaTransfer, FaultSpec::failing(0.5))
        };
        let a = plan(9);
        let pure: Vec<FaultDecision> = (0..64).map(|_| a.decide(FaultSite::ExpertLoad)).collect();
        let b = plan(9);
        let interleaved: Vec<FaultDecision> = (0..64)
            .map(|_| {
                b.decide(FaultSite::DmaTransfer);
                b.decide(FaultSite::ExpertLoad)
            })
            .collect();
        assert_eq!(pure, interleaved);
    }

    #[test]
    fn rates_converge_roughly() {
        let plan = FaultPlan::new(3).with_site(
            FaultSite::SocketLink,
            FaultSpec {
                fail_rate: 0.2,
                slow_rate: 0.3,
                slow_factor: 2.0,
            },
        );
        let mut failed = 0;
        let mut slowed = 0;
        for _ in 0..10_000 {
            match plan.decide(FaultSite::SocketLink) {
                FaultDecision::Fail => failed += 1,
                FaultDecision::Slow(f) => {
                    assert_eq!(f, 2.0);
                    slowed += 1;
                }
                FaultDecision::Ok => {}
            }
        }
        let fail_rate = failed as f64 / 10_000.0;
        let slow_rate = slowed as f64 / 10_000.0;
        assert!((fail_rate - 0.2).abs() < 0.02, "fail rate {fail_rate}");
        assert!((slow_rate - 0.3).abs() < 0.02, "slow rate {slow_rate}");
        assert_eq!(plan.stats().site(FaultSite::SocketLink).draws, 10_000);
    }

    #[test]
    #[should_panic(expected = "invalid fault rates")]
    fn overfull_rates_rejected() {
        let _ = FaultPlan::new(0).with_site(
            FaultSite::ExpertLoad,
            FaultSpec {
                fail_rate: 0.7,
                slow_rate: 0.7,
                slow_factor: 2.0,
            },
        );
    }

    #[test]
    #[should_panic(expected = "invalid fault rates")]
    fn failing_rejects_rate_above_one() {
        let _ = FaultSpec::failing(1.5);
    }

    #[test]
    #[should_panic(expected = "invalid fault rates")]
    fn failing_rejects_negative_rate() {
        let _ = FaultSpec::failing(-0.1);
    }

    #[test]
    #[should_panic(expected = "invalid fault rates")]
    fn failing_rejects_nan_rate() {
        let _ = FaultSpec::failing(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid fault rates")]
    fn slow_rejects_rate_above_one() {
        let _ = FaultSpec::slow(1.01, 2.0);
    }

    #[test]
    #[should_panic(expected = "slow_factor must be >= 1.0")]
    fn slow_rejects_speedup_factor() {
        let _ = FaultSpec::slow(0.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "invalid fault rates")]
    fn uniform_rejects_out_of_range_rate() {
        let _ = FaultPlan::uniform(0, 2.0);
    }

    #[test]
    fn boundary_rates_are_accepted() {
        assert_eq!(FaultSpec::failing(0.0), FaultSpec::NONE);
        assert_eq!(FaultSpec::failing(1.0).fail_rate, 1.0);
        assert_eq!(FaultSpec::slow(1.0, 1.0).slow_rate, 1.0);
    }

    #[test]
    fn uniform_plan_covers_all_sites() {
        let plan = FaultPlan::uniform(1, 0.1);
        for site in FaultSite::ALL {
            assert_eq!(plan.spec(site).fail_rate, 0.1);
        }
        assert!(!plan.is_zero());
    }
}
