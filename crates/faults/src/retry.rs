//! Bounded retries with exponential backoff, accounted in model time.

use serde::{Deserialize, Serialize};
use sn_arch::TimeSecs;

/// Retry budget applied to a faultable phase (expert switching, model
/// execution, routing). All times are simulated: backoff is charged into
/// the serving report's recovery component, not slept.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff charged after the first failed attempt.
    pub base_backoff: TimeSecs,
    /// Backoff growth per subsequent failure (exponential).
    pub backoff_multiplier: f64,
    /// Cap on the wasted time a single failed attempt can charge — the
    /// per-phase timeout: a hung operation is abandoned after this long.
    pub attempt_timeout: TimeSecs,
}

impl RetryPolicy {
    /// Production default: three retries, 0.5 ms initial backoff doubling
    /// each attempt, 250 ms per-attempt timeout. The backoff is tiny next
    /// to a ~13 ms expert switch — it models control-plane turnaround,
    /// not politeness to a remote service.
    pub fn standard() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: TimeSecs::from_micros(500.0),
            backoff_multiplier: 2.0,
            attempt_timeout: TimeSecs::from_millis(250.0),
        }
    }

    /// Fail-fast: no retries, immediate escalation to the caller.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: TimeSecs::ZERO,
            backoff_multiplier: 1.0,
            attempt_timeout: TimeSecs::from_millis(250.0),
        }
    }

    /// Ceiling on a single backoff charge. Exponential growth overflows
    /// `f64` range around attempt ~1000 with the standard multiplier;
    /// long before that the charge stops modeling anything physical, so
    /// one backoff never exceeds this bound (one minute of model time).
    pub const MAX_BACKOFF: TimeSecs = TimeSecs::from_secs(60.0);

    /// Backoff charged after failed attempt number `attempt` (0-based),
    /// capped at [`RetryPolicy::MAX_BACKOFF`] so absurd attempt counts
    /// cannot overflow to infinity (or NaN) and poison every downstream
    /// latency sum. Below the cap the arithmetic is untouched —
    /// small-attempt charges stay bit-identical to the uncapped form.
    pub fn backoff(&self, attempt: u32) -> TimeSecs {
        let raw = self.base_backoff * self.backoff_multiplier.powi(attempt.min(4096) as i32);
        if raw.as_secs().is_finite() {
            raw.min(Self::MAX_BACKOFF)
        } else {
            Self::MAX_BACKOFF
        }
    }

    /// The wasted time charged for one failed attempt that would have
    /// taken `attempt_cost` on success: capped by the per-phase timeout.
    pub fn charge(&self, attempt_cost: TimeSecs) -> TimeSecs {
        attempt_cost.min(self.attempt_timeout)
    }

    /// Drives `op` until it succeeds or the retry budget is exhausted.
    ///
    /// `op(attempt)` returns `Ok(value)` or `Err(wasted)` where `wasted`
    /// is the model time the failed attempt consumed before the fault was
    /// detected. Wasted time (timeout-capped) plus backoff accumulates
    /// into the returned [`Recovery`].
    pub fn run<T>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, TimeSecs>,
    ) -> Result<(T, Recovery), RetryError> {
        let mut recovery = Recovery::default();
        for attempt in 0..=self.max_retries {
            match op(attempt) {
                Ok(value) => return Ok((value, recovery)),
                Err(wasted) => {
                    recovery.retries += 1;
                    recovery.time += self.charge(wasted) + self.backoff(attempt);
                }
            }
        }
        Err(RetryError {
            attempts: self.max_retries + 1,
            recovery,
        })
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::standard()
    }
}

/// Time and attempts lost to faults before an operation succeeded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Recovery {
    /// Wasted attempt time plus backoff, in model time.
    pub time: TimeSecs,
    /// Failed attempts absorbed (0 on a clean first try).
    pub retries: u32,
}

impl Recovery {
    pub fn merge(&mut self, other: Recovery) {
        self.time += other.time;
        self.retries += other.retries;
    }
}

/// The retry budget ran out without a success.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryError {
    /// Attempts made (first try plus retries).
    pub attempts: u32,
    /// Time burned before giving up.
    pub recovery: Recovery,
}

impl std::fmt::Display for RetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gave up after {} attempts ({} lost)",
            self.attempts, self.recovery.time
        )
    }
}

impl std::error::Error for RetryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_try_success_charges_nothing() {
        let policy = RetryPolicy::standard();
        let (value, recovery) = policy.run(|_| Ok::<_, TimeSecs>(41)).unwrap();
        assert_eq!(value, 41);
        assert_eq!(recovery.retries, 0);
        assert!(recovery.time.is_zero());
    }

    #[test]
    fn backoff_grows_exponentially() {
        let policy = RetryPolicy::standard();
        assert_eq!(
            policy.backoff(2).as_secs(),
            policy.backoff(0).as_secs() * 4.0
        );
    }

    #[test]
    fn backoff_is_capped_at_large_attempt_counts() {
        let policy = RetryPolicy::standard();
        // Well past f64 overflow territory for 2^n growth: the charge
        // must stay finite and pinned at the cap, not inf/NaN.
        for attempt in [60, 1_000, 100_000, u32::MAX] {
            let b = policy.backoff(attempt);
            assert!(b.as_secs().is_finite(), "attempt {attempt}: {b}");
            assert_eq!(b, RetryPolicy::MAX_BACKOFF, "attempt {attempt}");
        }
        // Below the cap, the exponential form is untouched.
        assert_eq!(
            policy.backoff(3).as_secs(),
            policy.base_backoff.as_secs() * 8.0
        );
    }

    #[test]
    fn backoff_cap_survives_extreme_multipliers() {
        let policy = RetryPolicy {
            max_retries: 3,
            base_backoff: TimeSecs::from_secs(1.0),
            backoff_multiplier: f64::MAX,
            attempt_timeout: TimeSecs::from_millis(250.0),
        };
        assert_eq!(policy.backoff(2), RetryPolicy::MAX_BACKOFF);
    }

    #[test]
    fn wasted_time_accumulates_until_success() {
        let policy = RetryPolicy::standard();
        let mut tries = 0;
        let (value, recovery) = policy
            .run(|attempt| {
                tries += 1;
                if attempt < 2 {
                    Err(TimeSecs::from_millis(10.0))
                } else {
                    Ok("served")
                }
            })
            .unwrap();
        assert_eq!(value, "served");
        assert_eq!(tries, 3);
        assert_eq!(recovery.retries, 2);
        let expect = TimeSecs::from_millis(20.0) + policy.backoff(0) + policy.backoff(1);
        assert!((recovery.time.as_secs() - expect.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn timeout_caps_each_attempt() {
        let policy = RetryPolicy::standard();
        let err = policy
            .run::<()>(|_| Err(TimeSecs::from_secs(60.0)))
            .unwrap_err();
        assert_eq!(err.attempts, 4);
        // Each attempt charges at most the 250 ms timeout (plus backoff).
        assert!(err.recovery.time.as_secs() < 4.0 * 0.25 + 0.01);
    }

    #[test]
    fn fail_fast_makes_one_attempt() {
        let policy = RetryPolicy::none();
        let mut tries = 0;
        let err = policy
            .run::<()>(|_| {
                tries += 1;
                Err(TimeSecs::from_millis(1.0))
            })
            .unwrap_err();
        assert_eq!(tries, 1);
        assert_eq!(err.attempts, 1);
    }
}
