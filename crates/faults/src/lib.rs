//! Deterministic fault injection for the SN40L serving stack.
//!
//! The paper's headline deployment — a trillion-parameter Samba-CoE with
//! 150 experts streaming between three memory tiers (§V-B, §VI-B) — only
//! holds up in production if the *mechanisms* (DMA scheduling, expert
//! activation, routing, cluster fan-out) behave correctly off the happy
//! path. This crate provides the perturbation layer the rest of the stack
//! consults:
//!
//! - [`FaultPlan`]: a seeded, per-site fault schedule. Each operation site
//!   ([`FaultSite`]) draws an independent deterministic stream, so the
//!   same seed yields the same injected faults regardless of how sites
//!   interleave — simulation results stay byte-reproducible.
//! - [`RetryPolicy`]: bounded retries with exponential backoff and a
//!   per-attempt timeout, plus a generic retry driver that accounts the
//!   wasted time so serving reports can expose a `recovery` component.
//! - [`ChaosSchedule`]: non-stationary chaos on top of the plan —
//!   [`FaultWindow`]s confine a spec to a model-time window and
//!   [`NodeOutage`]s crash (and restore) correlated node sets together,
//!   so degradation can be injected exactly at peak load.
//!
//! Everything here is simulation-side: a "fault" costs model time, not
//! wall-clock time, and "backoff" is charged into latency reports.

mod chaos;
mod plan;
mod retry;

pub use chaos::{ChaosEvent, ChaosEventKind, ChaosSchedule, FaultWindow, NodeOutage};
pub use plan::{FaultDecision, FaultPlan, FaultSite, FaultSpec, FaultStats, SiteStats};
pub use retry::{Recovery, RetryError, RetryPolicy};
