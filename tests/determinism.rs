//! Determinism and serialization: the whole stack is seeded and
//! reproducible, and its data structures round-trip through serde.

use samba_coe::arch::prelude::*;
use samba_coe::coe::{CoeCluster, ExpertLibrary, PromptGenerator, Router, SambaCoeNode};
use samba_coe::compiler::{Compiler, FusionPolicy};
use samba_coe::faults::{FaultPlan, FaultSite, FaultSpec, RetryPolicy};
use samba_coe::models::{build, Phase, TransformerConfig};
use std::sync::Arc;

#[test]
fn compilation_is_deterministic() {
    let cfg = TransformerConfig::mistral_7b();
    let compiler = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
    let g1 = build(&cfg, Phase::Decode { past_tokens: 2048 }, 1, 8).unwrap();
    let g2 = build(&cfg, Phase::Decode { past_tokens: 2048 }, 1, 8).unwrap();
    assert_eq!(g1, g2, "graph construction is deterministic");
    let e1 = compiler.compile(&g1, FusionPolicy::Spatial).unwrap();
    let e2 = compiler.compile(&g2, FusionPolicy::Spatial).unwrap();
    assert_eq!(e1.kernel_count(), e2.kernel_count());
    assert_eq!(e1.distinct_programs(), e2.distinct_programs());
    assert!((e1.execution_time().as_secs() - e2.execution_time().as_secs()).abs() < 1e-15);
}

#[test]
fn serving_is_deterministic_across_instances() {
    let serve = || {
        let mut node = SambaCoeNode::new(NodeSpec::sn40l_node(), ExpertLibrary::new(40), 512);
        let mut generator = PromptGenerator::new(7, 512);
        let mut totals = Vec::new();
        for _ in 0..4 {
            totals.push(node.serve_batch(&generator.batch(4), 10).total().as_secs());
        }
        totals
    };
    assert_eq!(serve(), serve());
}

fn lumpy_plan(seed: u64) -> Arc<FaultPlan> {
    Arc::new(
        FaultPlan::new(seed)
            .with_site(FaultSite::ExpertLoad, FaultSpec::failing(0.15))
            .with_site(
                FaultSite::SocketLink,
                FaultSpec {
                    fail_rate: 0.1,
                    slow_rate: 0.2,
                    slow_factor: 1.5,
                },
            )
            .with_site(FaultSite::RouterDecision, FaultSpec::failing(0.1)),
    )
}

#[test]
fn fault_injected_serving_is_deterministic_across_instances() {
    // Same FaultPlan seed, fresh node each run: the full ServeReport
    // stream (every field, including recovery accounting) is identical.
    let serve = || {
        let mut node = SambaCoeNode::new(NodeSpec::sn40l_node(), ExpertLibrary::new(40), 512)
            .with_faults(lumpy_plan(0xD1CE), RetryPolicy::standard());
        let mut generator = PromptGenerator::new(7, 512);
        let mut reports = Vec::new();
        for _ in 0..4 {
            reports.push(
                node.try_serve_batch(&generator.batch(4), 10)
                    .map_err(|e| e.to_string()),
            );
        }
        reports
    };
    let first = serve();
    assert_eq!(first, serve());
    assert!(
        first.iter().flatten().any(|r| r.retries > 0),
        "the plan is lumpy enough to exercise recovery"
    );
}

#[test]
fn fault_injected_failover_is_deterministic_across_instances() {
    // A 3-node cluster with a seeded plan and one forced node failure
    // replays byte-identically: same re-homing, same ClusterReports.
    let serve = || {
        let plan = Arc::new(
            FaultPlan::new(0xFEE1)
                .with_site(FaultSite::ExpertLoad, FaultSpec::failing(0.05))
                .with_site(FaultSite::NodeFailure, FaultSpec::failing(0.1)),
        );
        let mut cluster = CoeCluster::new(NodeSpec::sn40l_node(), 3, ExpertLibrary::new(120), 512)
            .expect("3 nodes hold 120 experts")
            .with_faults(plan, RetryPolicy::standard());
        cluster.fail_node(1);
        let mut generator = PromptGenerator::new(11, 512);
        let mut reports = Vec::new();
        for _ in 0..4 {
            reports.push(
                cluster
                    .try_serve_batch(&generator.batch(8), 10)
                    .map_err(|e| e.to_string()),
            );
        }
        reports
    };
    let first = serve();
    assert_eq!(first, serve());
    assert!(
        first.iter().flatten().any(|r| r.rehomed_experts > 0),
        "the forced failure re-homes experts onto survivors"
    );
}

#[test]
fn zero_rate_fault_plan_is_bit_identical_to_unfaulted_serving() {
    // Wiring a plan whose every rate is zero must not perturb a single
    // bit of the report: the fault layer costs nothing when quiet.
    let mut plain = SambaCoeNode::new(NodeSpec::sn40l_node(), ExpertLibrary::new(40), 512);
    let mut faulted = SambaCoeNode::new(NodeSpec::sn40l_node(), ExpertLibrary::new(40), 512)
        .with_faults(Arc::new(FaultPlan::new(9)), RetryPolicy::standard());
    let mut g1 = PromptGenerator::new(7, 512);
    let mut g2 = PromptGenerator::new(7, 512);
    for _ in 0..4 {
        let want = plain.serve_batch(&g1.batch(4), 10);
        let got = faulted
            .try_serve_batch(&g2.batch(4), 10)
            .expect("zero-rate plan");
        assert_eq!(want, got);
    }
}

#[test]
fn routing_is_stable_across_library_sizes_queries() {
    let router = Router::new(5);
    let mut generator = PromptGenerator::new(5, 256);
    let prompts = generator.batch(32);
    let first: Vec<usize> = prompts.iter().map(|p| router.route(p, 150)).collect();
    let second: Vec<usize> = prompts.iter().map(|p| router.route(p, 150)).collect();
    assert_eq!(first, second);
}

#[test]
fn specs_are_stable_values() {
    // Spec constructors return identical values on every call — the
    // foundation of deterministic experiments.
    assert_eq!(SocketSpec::sn40l(), SocketSpec::sn40l());
    assert_eq!(NodeSpec::sn40l_node(), NodeSpec::sn40l_node());
    assert_eq!(DgxSpec::dgx_a100(), DgxSpec::dgx_a100());
    assert_eq!(Calibration::baseline(), Calibration::baseline());
}

#[test]
fn graphs_compare_equal_after_clone() {
    let cfg = TransformerConfig::llama2_7b();
    let g = build(&cfg, Phase::Prefill { prompt_tokens: 256 }, 1, 8).unwrap();
    let h = g.clone();
    assert_eq!(g, h);
    assert_eq!(g.total_flops().as_f64(), h.total_flops().as_f64());
}
