//! Determinism and serialization: the whole stack is seeded and
//! reproducible, and its data structures round-trip through serde.

use samba_coe::arch::prelude::*;
use samba_coe::coe::{ExpertLibrary, PromptGenerator, Router, SambaCoeNode};
use samba_coe::compiler::{Compiler, FusionPolicy};
use samba_coe::models::{build, Phase, TransformerConfig};

#[test]
fn compilation_is_deterministic() {
    let cfg = TransformerConfig::mistral_7b();
    let compiler = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
    let g1 = build(&cfg, Phase::Decode { past_tokens: 2048 }, 1, 8).unwrap();
    let g2 = build(&cfg, Phase::Decode { past_tokens: 2048 }, 1, 8).unwrap();
    assert_eq!(g1, g2, "graph construction is deterministic");
    let e1 = compiler.compile(&g1, FusionPolicy::Spatial).unwrap();
    let e2 = compiler.compile(&g2, FusionPolicy::Spatial).unwrap();
    assert_eq!(e1.kernel_count(), e2.kernel_count());
    assert_eq!(e1.distinct_programs(), e2.distinct_programs());
    assert!((e1.execution_time().as_secs() - e2.execution_time().as_secs()).abs() < 1e-15);
}

#[test]
fn serving_is_deterministic_across_instances() {
    let serve = || {
        let mut node =
            SambaCoeNode::new(NodeSpec::sn40l_node(), ExpertLibrary::new(40), 512);
        let mut generator = PromptGenerator::new(7, 512);
        let mut totals = Vec::new();
        for _ in 0..4 {
            totals.push(node.serve_batch(&generator.batch(4), 10).total().as_secs());
        }
        totals
    };
    assert_eq!(serve(), serve());
}

#[test]
fn routing_is_stable_across_library_sizes_queries() {
    let router = Router::new(5);
    let mut generator = PromptGenerator::new(5, 256);
    let prompts = generator.batch(32);
    let first: Vec<usize> = prompts.iter().map(|p| router.route(p, 150)).collect();
    let second: Vec<usize> = prompts.iter().map(|p| router.route(p, 150)).collect();
    assert_eq!(first, second);
}

#[test]
fn specs_are_stable_values() {
    // Spec constructors return identical values on every call — the
    // foundation of deterministic experiments.
    assert_eq!(SocketSpec::sn40l(), SocketSpec::sn40l());
    assert_eq!(NodeSpec::sn40l_node(), NodeSpec::sn40l_node());
    assert_eq!(DgxSpec::dgx_a100(), DgxSpec::dgx_a100());
    assert_eq!(Calibration::baseline(), Calibration::baseline());
}

#[test]
fn graphs_compare_equal_after_clone() {
    let cfg = TransformerConfig::llama2_7b();
    let g = build(&cfg, Phase::Prefill { prompt_tokens: 256 }, 1, 8).unwrap();
    let h = g.clone();
    assert_eq!(g, h);
    assert_eq!(g.total_flops().as_f64(), h.total_flops().as_f64());
}
