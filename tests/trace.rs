//! Tracing guarantees: determinism, Chrome-trace schema validity, and the
//! bench-parity contract (a disabled tracer changes nothing).

use samba_coe::coe::{ExpertLibrary, PromptGenerator, SambaCoeNode};
use samba_coe::trace::json::{self, JsonValue};
use samba_coe::trace::Tracer;
use sn_arch::NodeSpec;
use sn_bench::trace::traced_fig12_run;

/// Two identical traced runs must emit byte-identical trace streams —
/// event order is instrumentation call order and every timestamp derives
/// from the same deterministic model arithmetic.
#[test]
fn same_seed_runs_emit_byte_identical_traces() {
    let a = traced_fig12_run(150, 8);
    let b = traced_fig12_run(150, 8);
    assert_eq!(a.trace_json, b.trace_json, "trace streams must not drift");
    assert_eq!(
        a.report.metrics, b.report.metrics,
        "aggregated metrics must not drift"
    );
}

/// The emitted JSON must parse and have the Chrome trace event shape
/// Perfetto expects: a `traceEvents` array whose entries carry `name`,
/// `ph`, `pid`, and (for non-metadata events) a numeric `ts`; complete
/// events carry a non-negative `dur`.
#[test]
fn emitted_json_is_valid_chrome_trace_format() {
    let run = traced_fig12_run(150, 8);
    let doc = json::parse(&run.trace_json).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("top-level traceEvents array");
    assert!(events.len() > 10, "a real run produces many events");
    let mut pids = std::collections::BTreeSet::new();
    for e in events {
        e.get("name").and_then(JsonValue::as_str).expect("name");
        let ph = e.get("ph").and_then(JsonValue::as_str).expect("ph");
        let pid = e.get("pid").and_then(JsonValue::as_f64).expect("pid");
        pids.insert(pid as u64);
        match ph {
            "M" => {}
            "X" => {
                let ts = e.get("ts").and_then(JsonValue::as_f64).expect("ts");
                let dur = e.get("dur").and_then(JsonValue::as_f64).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0, "ts/dur must be non-negative");
            }
            "i" | "C" => {
                e.get("ts").and_then(JsonValue::as_f64).expect("ts");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    // The fig12 timeline must cover rdusim (pid 1), memsim (pid 2),
    // runtime (pid 3), and coe serving (pid 4).
    for pid in [1u64, 2, 3, 4] {
        assert!(pids.contains(&pid), "timeline misses pid {pid}");
    }
}

/// Bench-parity guard: a node with tracing disabled produces a
/// `ServeReport` bit-identical to the pre-existing untraced path, and a
/// node with tracing *enabled* perturbs none of the timing fields.
#[test]
fn disabled_tracer_is_bit_identical_to_untraced_path() {
    let make = || SambaCoeNode::new(NodeSpec::sn40l_node(), ExpertLibrary::new(150), 1024);
    let batch = PromptGenerator::new(7, 1024).batch(6);

    let want = make().serve_batch(&batch, 20);
    let disabled = make()
        .with_tracer(Tracer::disabled())
        .serve_batch(&batch, 20);
    assert_eq!(want, disabled, "disabled tracer: bit-identical report");

    let enabled = make()
        .with_tracer(Tracer::enabled())
        .serve_batch(&batch, 20);
    assert_eq!(want.router, enabled.router);
    assert_eq!(want.switching, enabled.switching);
    assert_eq!(want.execution, enabled.execution);
    assert_eq!(want.recovery, enabled.recovery);
    assert_eq!(want.assignments, enabled.assignments);
    assert!(want.metrics.is_none());
    assert!(enabled.metrics.is_some());
}
