//! End-to-end integration: model builders → compiler → runtime → CoE
//! serving, crossing every crate boundary.

use samba_coe::arch::prelude::*;
use samba_coe::coe::{ExpertLibrary, PromptGenerator, SambaCoeNode};
use samba_coe::compiler::{Compiler, FusionPolicy};
use samba_coe::models::{build, table2, Phase, TransformerConfig};
use samba_coe::runtime::executor::NodeExecutor;

#[test]
fn every_table2_benchmark_compiles_and_runs_both_policies() {
    let compiler = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
    let node = NodeExecutor::new(NodeSpec::sn40l_node(), Calibration::baseline());
    for bench in table2() {
        let graph = bench.build_graph();
        let unfused = compiler
            .compile(&graph, FusionPolicy::Unfused)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let fused = compiler
            .compile(&graph, FusionPolicy::Spatial)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(
            fused.kernel_count() < unfused.kernel_count(),
            "{}",
            bench.name
        );
        let tu = node.run(&unfused, Orchestration::Software).total;
        let tf = node.run(&fused, Orchestration::Hardware).total;
        assert!(tf.as_secs() > 0.0, "{}", bench.name);
        assert!(tf < tu, "{}: fusion must win ({tf} vs {tu})", bench.name);
    }
}

#[test]
fn abstract_claim_speedups_2x_to_13x_band() {
    // Abstract: "speedups ranging from 2x to 13x on various benchmarks
    // running on eight RDU sockets compared with an unfused baseline".
    // Our reproduction spans a compatible band (we allow moderate
    // overshoot at the top for the FFT workload).
    let compiler = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
    let node = NodeExecutor::new(NodeSpec::sn40l_node(), Calibration::baseline());
    let mut speedups = Vec::new();
    for bench in table2() {
        let graph = bench.build_graph();
        let unfused = compiler.compile(&graph, FusionPolicy::Unfused).unwrap();
        let fused = compiler.compile(&graph, FusionPolicy::Spatial).unwrap();
        let s = node.run(&unfused, Orchestration::Software).total
            / node.run(&fused, Orchestration::Software).total;
        speedups.push((bench.name.clone(), s));
    }
    let min = speedups
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::INFINITY, f64::min);
    let max = speedups.iter().map(|(_, s)| *s).fold(0.0, f64::max);
    assert!(min >= 1.5, "minimum fusion speedup {min:.2}");
    assert!(
        (8.0..=30.0).contains(&max),
        "maximum fusion speedup {max:.2}"
    );
    // The FFT conv or a decode workload should be the biggest winner.
    let (winner, _) = speedups
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    assert!(
        winner.contains("FFT") || winner.contains("decode"),
        "unexpected top benchmark {winner}"
    );
}

#[test]
fn coe_serving_all_crates_together() {
    let mut node = SambaCoeNode::new(NodeSpec::sn40l_node(), ExpertLibrary::new(60), 512);
    let mut generator = PromptGenerator::new(99, 512);
    let mut last_total = None;
    for _ in 0..6 {
        let report = node.serve_batch(&generator.batch(4), 10);
        assert_eq!(report.assignments.len(), 4);
        assert!(report.total().as_secs() > 0.0);
        last_total = Some(report.total());
    }
    // After warmup, repeated traffic should be fast and switch-light.
    let warm = last_total.unwrap();
    assert!(warm.as_millis() < 500.0, "warm batch {warm}");
}

#[test]
fn tp_degrees_scale_consistently() {
    let cfg = TransformerConfig::llama2_7b();
    let compiler = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
    let node = NodeExecutor::new(NodeSpec::sn40l_node(), Calibration::baseline());
    let mut times = Vec::new();
    for tp in [1usize, 2, 4, 8] {
        let g = build(
            &cfg,
            Phase::Prefill {
                prompt_tokens: 2048,
            },
            1,
            tp,
        )
        .unwrap();
        let exe = compiler.compile(&g, FusionPolicy::Spatial).unwrap();
        times.push(node.run(&exe, Orchestration::Hardware).total);
    }
    for w in times.windows(2) {
        assert!(
            w[1] < w[0],
            "more sockets must not be slower: {} -> {}",
            w[0],
            w[1]
        );
    }
    // TP8 should cut prefill by >4x over TP1 (sublinear due to collectives).
    let scaling = times[0] / times[3];
    assert!(scaling > 4.0 && scaling <= 8.5, "TP8 scaling {scaling:.1}x");
}

#[test]
fn memory_plans_respect_socket_capacity() {
    let compiler = Compiler::new(SocketSpec::sn40l(), Calibration::baseline());
    for bench in table2() {
        let graph = bench.build_graph();
        let exe = compiler.compile(&graph, FusionPolicy::Spatial).unwrap();
        let peak = exe.memory().hbm_peak();
        assert!(
            peak <= SocketSpec::sn40l().hbm.capacity,
            "{}: peak {peak} exceeds HBM",
            bench.name
        );
    }
}
