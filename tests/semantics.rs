//! Semantic integration: the model builders produce graphs that *compute*
//! (run through the numeric interpreter), not just graphs that count FLOPs.

use samba_coe::dataflow::interp::Interpreter;
use samba_coe::dataflow::{DType, Shape, TensorKind};
use samba_coe::models::{build, Attention, Phase, TransformerConfig};
use std::collections::HashMap;

/// A pocket-sized llama-style config the interpreter can execute quickly.
fn tiny_config() -> TransformerConfig {
    let mut cfg = TransformerConfig::llama2_7b();
    cfg.name = "tiny-llama".to_string();
    cfg.hidden = 64;
    cfg.layers = 2;
    cfg.heads = 4;
    cfg.intermediate = 128;
    cfg.vocab = 256;
    cfg.attention = Attention::MultiHead;
    cfg
}

#[test]
fn tiny_prefill_produces_finite_logits() {
    let cfg = tiny_config();
    let g = build(&cfg, Phase::Prefill { prompt_tokens: 8 }, 1, 2).unwrap();
    let out = Interpreter::new(7)
        .run_outputs(&g, &HashMap::new())
        .unwrap();
    assert_eq!(out.len(), 1);
    let logits = &out[0];
    // Last-token slice x vocab shard.
    assert_eq!(logits.shape, Shape::mat(1, cfg.vocab / 2));
    assert!(logits.values.iter().all(|v| v.is_finite()));
    assert!(logits.values.iter().any(|&v| v != 0.0));
}

#[test]
fn tiny_decode_executes_against_kv_cache() {
    let cfg = tiny_config();
    let g = build(&cfg, Phase::Decode { past_tokens: 16 }, 1, 2).unwrap();
    let out = Interpreter::new(9)
        .run_outputs(&g, &HashMap::new())
        .unwrap();
    assert!(out[0].values.iter().all(|v| v.is_finite()));
}

#[test]
fn different_token_ids_change_the_logits() {
    let cfg = tiny_config();
    let g = build(&cfg, Phase::Prefill { prompt_tokens: 8 }, 1, 2).unwrap();
    let ids = g.tensor_by_name("token_ids").expect("ids input exists");
    let run_with = |values: Vec<f32>| {
        let mut inputs = HashMap::new();
        inputs.insert(
            ids,
            samba_coe::dataflow::interp::TensorData {
                shape: Shape::new(vec![8]),
                dtype: DType::Int32,
                values,
            },
        );
        Interpreter::new(7).run_outputs(&g, &inputs).unwrap()[0]
            .values
            .clone()
    };
    let a = run_with(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    let b = run_with(vec![9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 8.0]);
    // Same final token, different context: attention must mix history in.
    assert_ne!(a, b, "prompt history should influence the logits");
}

#[test]
fn weights_drive_the_computation() {
    let cfg = tiny_config();
    let g = build(&cfg, Phase::Prefill { prompt_tokens: 4 }, 1, 1).unwrap();
    let a = Interpreter::new(1)
        .run_outputs(&g, &HashMap::new())
        .unwrap();
    let b = Interpreter::new(2)
        .run_outputs(&g, &HashMap::new())
        .unwrap();
    assert_ne!(a, b, "different synthesized weights give different outputs");
}

#[test]
fn every_weight_tensor_is_read_only_eligible() {
    // The §V-B copy-back elision rests on weights being read-only: the
    // builders must never mark a weight tensor any other way.
    let cfg = tiny_config();
    for phase in [
        Phase::Prefill { prompt_tokens: 8 },
        Phase::Decode { past_tokens: 8 },
    ] {
        let g = build(&cfg, phase, 1, 2).unwrap();
        for t in g.tensors().iter().filter(|t| t.kind == TensorKind::Weight) {
            assert!(t.kind.is_read_only(), "{} must be read-only", t.name);
        }
    }
}
