//! Online-scheduler guarantees: burst arrivals degenerate bit-identically
//! to the offline batch path (fault-free, fault-injected, and with the
//! SLO tracker attached), tracing/SLO ride along without perturbing a
//! single latency, runs are seed-deterministic, and the conservation
//! invariants hold over hundreds of generated schedules.

mod common;

use common::topology::ClusterTopology;
use common::{check_cases, CaseRng};
use samba_coe::coe::scheduler::{ArrivalProcess, OnlineReport, SchedulerConfig};
use samba_coe::coe::{ExpertLibrary, Prompt, SambaCoeNode};
use samba_coe::faults::{FaultPlan, FaultSite, FaultSpec, RetryPolicy};
use samba_coe::profile::SloConfig;
use samba_coe::trace::Tracer;
use sn_arch::NodeSpec;
use std::sync::Arc;

fn coe(experts: usize) -> SambaCoeNode {
    SambaCoeNode::new(NodeSpec::sn40l_node(), ExpertLibrary::new(experts), 1024)
}

fn prompts_of(requests: &[samba_coe::coe::scheduler::OnlineRequest]) -> Vec<Prompt> {
    requests.iter().map(|r| r.prompt.clone()).collect()
}

/// The correctness anchor: one burst of N requests at t = 0 with
/// unbounded admission is exactly `serve_batch` — every report field
/// bit-identical, cold caches and warm.
#[test]
fn burst_with_unbounded_admission_reproduces_serve_batch_bit_identically() {
    let mut batch_node = coe(150);
    let mut online_node = coe(150);
    let requests = ArrivalProcess::burst(0x5eed, 1024).generate(8);
    let prompts = prompts_of(&requests);
    for round in 0..3 {
        let want = batch_node.serve_batch(&prompts, 20);
        let got = online_node.serve_online(&requests, 20, SchedulerConfig::unbounded());
        assert_eq!(
            want, got.report,
            "round {round}: reports must be bit-identical"
        );
        assert_eq!(got.waves, 1, "a t=0 burst is a single admission wave");
        assert_eq!(got.records.len(), 8);
        // With no queueing, per-request TTFT decomposes into the shared
        // router + switching plus this request's slot in the prefill line.
        assert!(got.records.iter().all(|r| r.queue_delay().is_zero()));
    }
}

/// Same anchor with the SLO tracker attached on both sides: the wave
/// observation must match the batch observation, so even the attached
/// `SloSnapshot` (a float-heavy derived struct) agrees bit-for-bit.
#[test]
fn burst_parity_holds_with_slo_tracker_attached() {
    let mut batch_node = coe(150).with_slo(SloConfig::default());
    let mut online_node = coe(150).with_slo(SloConfig::default());
    let requests = ArrivalProcess::burst(0xcafe, 1024).generate(6);
    let prompts = prompts_of(&requests);
    for _ in 0..3 {
        let want = batch_node.serve_batch(&prompts, 16);
        let got = online_node.serve_online(&requests, 16, SchedulerConfig::unbounded());
        assert!(want.slo.is_some(), "tracker attached");
        assert_eq!(want, got.report, "SLO snapshots included");
    }
}

/// Same anchor under injected faults: the per-site draw sequences
/// coincide on a one-wave burst, so `try_serve_online` reproduces
/// `try_serve_batch` bit-identically — recovery time, retry counts, and
/// all.
#[test]
fn burst_parity_holds_under_injected_faults() {
    let plan = || {
        Arc::new(
            FaultPlan::new(13)
                .with_site(FaultSite::ExpertLoad, FaultSpec::failing(0.2))
                .with_site(
                    FaultSite::SocketLink,
                    FaultSpec {
                        fail_rate: 0.2,
                        slow_rate: 0.2,
                        slow_factor: 1.5,
                    },
                )
                .with_site(FaultSite::RouterDecision, FaultSpec::failing(0.2)),
        )
    };
    let mut batch_node = coe(150).with_faults(plan(), RetryPolicy::standard());
    let mut online_node = coe(150).with_faults(plan(), RetryPolicy::standard());
    let requests = ArrivalProcess::burst(0x5eed, 1024).generate(8);
    let prompts = prompts_of(&requests);
    let want = batch_node
        .try_serve_batch(&prompts, 20)
        .expect("standard retries absorb these rates");
    let got = online_node
        .try_serve_online(&requests, 20, SchedulerConfig::unbounded())
        .expect("same plan, same draws, same outcome");
    assert!(want.retries > 0, "the plan must actually fire");
    assert_eq!(want, got.report, "fault draws and recovery must coincide");
}

/// Attaching a tracer and an SLO tracker must not move a single number:
/// per-request records and every report timing field stay bit-identical
/// to the bare scheduler (instrumentation runs after the arithmetic).
#[test]
fn tracing_and_slo_ride_along_without_perturbing_latencies() {
    let mut plain = coe(150);
    let mut instrumented = coe(150)
        .with_tracer(Tracer::enabled())
        .with_slo(SloConfig::default());
    let requests = ArrivalProcess::poisson(0xfeed, 1024, 25.0).generate(16);
    let want = plain.serve_online(&requests, 12, SchedulerConfig::bounded(4));
    let got = instrumented.serve_online(&requests, 12, SchedulerConfig::bounded(4));
    assert_eq!(want.records, got.records, "records must be bit-identical");
    assert_eq!(want.makespan, got.makespan);
    assert_eq!(want.waves, got.waves);
    assert_eq!(want.report.router, got.report.router);
    assert_eq!(want.report.switching, got.report.switching);
    assert_eq!(want.report.execution, got.report.execution);
    assert_eq!(want.report.assignments, got.report.assignments);
    assert!(
        want.report.metrics.is_none(),
        "bare node attaches no metrics"
    );
    assert!(want.report.slo.is_none());
    let metrics = got.report.metrics.expect("tracer attached");
    use samba_coe::trace::{Counter, Metric};
    assert_eq!(metrics.counter(Counter::PromptsServed), 16);
    assert_eq!(metrics.counter(Counter::RequestsAdmitted), 16);
    assert_eq!(metrics.counter(Counter::AdmissionWaves), got.waves as u64);
    assert!(metrics.histogram(Metric::QueueDelay).is_some());
    assert!(metrics.histogram(Metric::Ttft).is_some());
    assert!(
        got.report.slo.is_some(),
        "per-wave observations fed the window"
    );
}

/// Same seed ⇒ byte-identical completion records (the scheduler's event
/// order) and an identical throughput–latency curve across two runs.
#[test]
fn same_seed_runs_are_byte_identical() {
    let sweep = || -> (String, Vec<(f64, f64)>) {
        let mut events = String::new();
        let mut curve = Vec::new();
        for rate in [8.0, 16.0, 32.0] {
            let mut node = coe(150);
            let requests = ArrivalProcess::poisson(0x5eed, 1024, rate).generate(12);
            let out = node.serve_online(&requests, 10, SchedulerConfig::bounded(4));
            events.push_str(&format!("{:?}\n", out.records));
            curve.push((out.latency_percentile(0.95).as_secs(), out.tokens_per_sec()));
        }
        (events, curve)
    };
    let (events_a, curve_a) = sweep();
    let (events_b, curve_b) = sweep();
    assert_eq!(events_a, events_b, "event order must not drift");
    assert_eq!(curve_a, curve_b, "throughput–latency curve must not drift");
}

/// Different seed ⇒ different arrival times (and prompts), but the
/// conservation laws hold identically: same request count, same token
/// total.
#[test]
fn different_seeds_differ_in_arrivals_but_conserve_totals() {
    let a = ArrivalProcess::poisson(1, 1024, 20.0).generate(12);
    let b = ArrivalProcess::poisson(2, 1024, 20.0).generate(12);
    let arrivals = |reqs: &[samba_coe::coe::scheduler::OnlineRequest]| -> Vec<f64> {
        reqs.iter().map(|r| r.arrival.as_secs()).collect()
    };
    assert_ne!(
        arrivals(&a),
        arrivals(&b),
        "seeds must decorrelate arrivals"
    );
    let mut node_a = coe(150);
    let mut node_b = coe(150);
    let out_a = node_a.serve_online(&a, 10, SchedulerConfig::bounded(4));
    let out_b = node_b.serve_online(&b, 10, SchedulerConfig::bounded(4));
    assert_eq!(out_a.records.len(), 12);
    assert_eq!(out_b.records.len(), 12);
    assert_eq!(out_a.total_output_tokens(), out_b.total_output_tokens());
}

// ---------------------------------------------------------------------
// Property harness: conservation invariants over generated schedules.
// ---------------------------------------------------------------------

/// One generated scheduling scenario.
#[derive(Debug, Clone, Copy)]
struct SchedCase {
    seed: u64,
    n_requests: usize,
    output_tokens: usize,
    max_in_flight: usize,
    /// 0 = burst, 1 = Poisson, 2 = burst-train.
    pattern: u8,
    rate_rps: f64,
}

fn gen_case(rng: &mut CaseRng) -> SchedCase {
    SchedCase {
        seed: rng.next_u64(),
        n_requests: rng.usize_in(1, 13),
        output_tokens: rng.usize_in(1, 9),
        max_in_flight: rng.usize_in(1, 7),
        pattern: rng.usize_in(0, 3) as u8,
        rate_rps: 5.0 + rng.f64() * 95.0,
    }
}

/// Shrinking halves each dimension and simplifies the arrival pattern to
/// a burst — the scheduler's simplest regime.
fn shrink_case(c: &SchedCase) -> Vec<SchedCase> {
    let mut out = Vec::new();
    if c.n_requests > 1 {
        out.push(SchedCase {
            n_requests: c.n_requests / 2,
            ..*c
        });
        out.push(SchedCase {
            n_requests: c.n_requests - 1,
            ..*c
        });
    }
    if c.output_tokens > 1 {
        out.push(SchedCase {
            output_tokens: c.output_tokens / 2,
            ..*c
        });
    }
    if c.max_in_flight > 1 {
        out.push(SchedCase {
            max_in_flight: c.max_in_flight / 2,
            ..*c
        });
    }
    if c.pattern != 0 {
        out.push(SchedCase { pattern: 0, ..*c });
    }
    out
}

fn run_case(node: &mut SambaCoeNode, c: &SchedCase) -> OnlineReport {
    let process = match c.pattern {
        0 => ArrivalProcess::burst(c.seed, 1024),
        1 => ArrivalProcess::poisson(c.seed, 1024, c.rate_rps),
        _ => ArrivalProcess::burst_train(
            c.seed,
            1024,
            (c.max_in_flight).max(1),
            sn_arch::TimeSecs::from_millis(50.0),
        ),
    };
    let requests = process.generate(c.n_requests);
    node.serve_online(
        &requests,
        c.output_tokens,
        SchedulerConfig::bounded(c.max_in_flight),
    )
}

const CASES: usize = 200;

/// Worker threads for the property harness. Batch boundaries are fixed
/// by the harness, so the verdict is identical at any thread count —
/// this just keeps the 4x200-case suites off the single-core path.
const JOBS: usize = 4;

#[test]
fn property_every_request_completes_exactly_once() {
    check_cases(
        "every admitted request completes exactly once",
        CASES,
        0xa11c_e5e5,
        JOBS,
        gen_case,
        shrink_case,
        || coe(40),
        |node, c| {
            let out = run_case(node, c);
            if out.records.len() != c.n_requests {
                return Err(format!(
                    "{} records for {} requests",
                    out.records.len(),
                    c.n_requests
                ));
            }
            let mut seen = vec![false; c.n_requests];
            for r in &out.records {
                if r.index >= c.n_requests || seen[r.index] {
                    return Err(format!(
                        "request index {} duplicated or out of range",
                        r.index
                    ));
                }
                seen[r.index] = true;
            }
            Ok(())
        },
    );
}

#[test]
fn property_output_tokens_are_conserved() {
    check_cases(
        "total output tokens are conserved",
        CASES,
        0x70ce_2222,
        JOBS,
        gen_case,
        shrink_case,
        || coe(40),
        |node, c| {
            let out = run_case(node, c);
            let want = c.n_requests * c.output_tokens.max(1);
            let got = out.total_output_tokens();
            if got != want {
                return Err(format!("expected {want} output tokens, got {got}"));
            }
            Ok(())
        },
    );
}

#[test]
fn property_queue_delay_is_never_negative() {
    check_cases(
        "queueing delay is non-negative",
        CASES,
        0xde1a_9999,
        JOBS,
        gen_case,
        shrink_case,
        || coe(40),
        |node, c| {
            let out = run_case(node, c);
            for r in &out.records {
                if r.admitted < r.arrival {
                    return Err(format!(
                        "request {} admitted at {} before its arrival {}",
                        r.index, r.admitted, r.arrival
                    ));
                }
                if r.queue_delay().as_secs() < 0.0 {
                    return Err(format!("negative queue delay on request {}", r.index));
                }
            }
            Ok(())
        },
    );
}

/// The conservation laws again, but with the node shape drawn from the
/// shared topology generator: library size and compiled graph length
/// vary per case instead of being pinned to one 40-expert node, so the
/// scheduler's accounting is proven across the same topology space the
/// `intra_diff` harness sweeps.
#[test]
fn property_conservation_holds_across_generated_topologies() {
    check_cases(
        "conservation across generated topologies",
        100,
        0x70b0_a109,
        JOBS,
        |rng| (ClusterTopology::generate(rng), gen_case(rng)),
        |(t, c)| {
            let mut out: Vec<(ClusterTopology, SchedCase)> =
                t.shrink().into_iter().map(|t2| (t2, *c)).collect();
            out.extend(shrink_case(c).into_iter().map(|c2| (*t, c2)));
            out
        },
        || (),
        |(), (topology, c)| {
            let mut node = topology.build_node();
            let out = run_case(&mut node, c);
            if out.records.len() != c.n_requests {
                return Err(format!(
                    "{} records for {} requests on {topology:?}",
                    out.records.len(),
                    c.n_requests
                ));
            }
            let want = c.n_requests * c.output_tokens.max(1);
            if out.total_output_tokens() != want {
                return Err(format!(
                    "expected {want} output tokens, got {} on {topology:?}",
                    out.total_output_tokens()
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn property_completions_are_non_decreasing() {
    check_cases(
        "completion times are non-decreasing per node",
        CASES,
        0x0c0d_e444,
        JOBS,
        gen_case,
        shrink_case,
        || coe(40),
        |node, c| {
            let out = run_case(node, c);
            for w in out.records.windows(2) {
                if w[0].completed > w[1].completed {
                    return Err(format!(
                        "record for request {} completed at {} after the later record's {}",
                        w[0].index, w[0].completed, w[1].completed
                    ));
                }
            }
            if let Some(last) = out.records.last() {
                if last.completed > out.makespan {
                    return Err("a completion lands past the makespan".to_string());
                }
            }
            Ok(())
        },
    );
}
