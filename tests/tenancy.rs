//! Multi-tenant serving guarantees, proven under chaos: the seeded
//! end-to-end scenario (bursty two-class load + a correlated node
//! outage during the peak window) keeps interactive p99 inside its SLO
//! class bound while batch absorbs the damage, the capacity controller
//! re-homes experts and recovers, and — over hundreds of generated
//! scenarios — every submitted request ends exactly one way
//! (`admitted = completed + shed + in-flight`, with in-flight zero at
//! return), bit-identically across runs and `--jobs` values.

mod common;

use common::topology::ClusterTopology;
use common::{check_cases, CaseRng};
use samba_coe::coe::scheduler::ArrivalPattern;
use samba_coe::coe::{
    ClassPolicy, RateLimit, ScaleDecision, ShedReason, SloClass, TenancyConfig, TenantSpec,
};
use samba_coe::faults::ChaosSchedule;
use sn_arch::TimeSecs;
use sn_bench::tenants;

const CASES: usize = 150;
const JOBS: usize = 4;

/// The acceptance scenario end-to-end: four tenants, a two-node
/// correlated outage across the peak burst, a degraded fault window on
/// the fabric, and the SLO-driven autoscaler fighting back.
#[test]
fn chaos_scenario_holds_interactive_slo_while_batch_absorbs_damage() {
    let report = tenants::tenants_report_seeded(tenants::SWEEP_SEED, 2.0);
    let bound = report.config.interactive.slo_bound;

    // Interactive stays inside its class bound at p99.
    let interactive_p99 = report.latency_percentile(SloClass::Interactive, 0.99);
    assert!(
        interactive_p99 <= bound,
        "interactive p99 {interactive_p99} blew the class bound {bound}"
    );

    // Batch is the damage sponge: preempted at wave boundaries, and its
    // tail dwarfs the interactive tail.
    assert!(
        report.preemptions > 0,
        "interactive load must preempt batch"
    );
    assert!(
        report.latency_percentile(SloClass::Batch, 0.99) > interactive_p99,
        "batch must carry the longer tail"
    );

    // The outage bit: experts re-homed off the dead nodes, and the
    // fabric fault window forced retransmits.
    assert!(report.rehomed_experts > 0, "outage must force re-homing");
    assert!(
        report.chaos_retransmits + report.chaos_slowdowns > 0,
        "the degraded fabric window must bite at least one wave"
    );

    // The controller recovered capacity: it grew the cluster, and the
    // run ended with at least the surviving-node count healthy.
    assert!(
        report
            .scale_events
            .iter()
            .any(|e| e.decision == ScaleDecision::Up && e.moved_experts > 0),
        "a scale-up must re-home experts onto the new node"
    );
    assert!(
        report.final_nodes >= tenants::SWEEP_NODES - tenants::OUTAGE_NODES.len(),
        "crashed nodes restore after the window"
    );
    assert!(
        report.goodput_rps(SloClass::Interactive) > 0.0,
        "goodput recovers after the failure window"
    );

    // Nothing leaked.
    assert!(report.conservation_holds());
    assert_eq!(report.pending, 0);
}

/// Recovery is visible in the timeline: interactive requests arriving
/// after the outage window complete strictly faster at the tail than
/// those arriving inside it, because the autoscaled cluster has more
/// healthy nodes than the degraded one did.
#[test]
fn goodput_recovers_after_the_failure_window() {
    let report = tenants::tenants_report_seeded(tenants::SWEEP_SEED, 2.0);
    let during: Vec<f64> = report
        .class_records(SloClass::Interactive)
        .filter(|r| r.arrival >= tenants::OUTAGE_START && r.arrival < tenants::OUTAGE_END)
        .map(|r| r.latency().as_secs())
        .collect();
    let after: Vec<f64> = report
        .class_records(SloClass::Interactive)
        .filter(|r| r.arrival >= tenants::OUTAGE_END)
        .map(|r| r.latency().as_secs())
        .collect();
    assert!(
        !during.is_empty() && !after.is_empty(),
        "the scenario must have interactive traffic in and after the window"
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&after) < mean(&during),
        "post-recovery latency {} must beat in-outage latency {}",
        mean(&after),
        mean(&during)
    );
}

/// Byte-for-byte determinism of the full scenario, including the chaos
/// timeline, autoscaler actions, and every shed record.
#[test]
fn chaos_scenario_is_bit_reproducible() {
    let a = tenants::tenants_report_seeded(tenants::SWEEP_SEED, 2.0);
    let b = tenants::tenants_report_seeded(tenants::SWEEP_SEED, 2.0);
    assert_eq!(a, b, "same seed, same report, to the last shed record");
}

/// One generated tenancy scenario for the conservation property. The
/// cluster shape comes from the shared topology generator, so the
/// conservation laws are proven over varied node counts, placements,
/// and pre-damaged clusters — not one hand-picked two-node shape.
#[derive(Debug, Clone)]
struct TenancyCase {
    topology: ClusterTopology,
    seed: u64,
    interactive_requests: usize,
    batch_requests: usize,
    interactive_cap: usize,
    batch_cap: usize,
    interactive_deadline_ms: f64,
    batch_chunks: usize,
    per_node_slots: usize,
    rate_limited: bool,
    outage: Option<(f64, Option<f64>)>,
}

fn generate_case(rng: &mut CaseRng) -> TenancyCase {
    TenancyCase {
        topology: ClusterTopology::generate(rng),
        seed: rng.next_u64(),
        interactive_requests: rng.usize_in(0, 32),
        batch_requests: rng.usize_in(0, 24),
        interactive_cap: rng.usize_in(1, 40),
        batch_cap: rng.usize_in(1, 40),
        interactive_deadline_ms: 1.0 + rng.f64() * 500.0,
        batch_chunks: rng.usize_in(1, 4),
        per_node_slots: rng.usize_in(1, 5),
        rate_limited: rng.f64() < 0.3,
        outage: if rng.f64() < 0.4 {
            let start = rng.f64() * 0.2;
            // 25% of injected outages never restore: the permanent
            // total-outage path must conserve too.
            let end = if rng.f64() < 0.75 {
                Some(start + 0.05 + rng.f64() * 0.5)
            } else {
                None
            };
            Some((start, end))
        } else {
            None
        },
    }
}

fn shrink_case(case: &TenancyCase) -> Vec<TenancyCase> {
    let mut out = Vec::new();
    for topology in case.topology.shrink() {
        let mut c = case.clone();
        c.topology = topology;
        out.push(c);
    }
    if case.interactive_requests > 0 {
        let mut c = case.clone();
        c.interactive_requests /= 2;
        out.push(c);
    }
    if case.batch_requests > 0 {
        let mut c = case.clone();
        c.batch_requests /= 2;
        out.push(c);
    }
    if case.outage.is_some() {
        let mut c = case.clone();
        c.outage = None;
        out.push(c);
    }
    if case.rate_limited {
        let mut c = case.clone();
        c.rate_limited = false;
        out.push(c);
    }
    out
}

fn run_case(case: &TenancyCase) -> Result<(), String> {
    let mut cluster = case.topology.build();
    let config = TenancyConfig {
        seed: case.seed,
        prompt_tokens: case.topology.prompt_tokens,
        wave_tokens: 8,
        per_node_slots: case.per_node_slots,
        interactive: ClassPolicy {
            queue_cap: case.interactive_cap,
            deadline: TimeSecs::from_millis(case.interactive_deadline_ms),
            slo_bound: TimeSecs::from_millis(250.0),
            chunks: 1,
        },
        batch: ClassPolicy {
            queue_cap: case.batch_cap,
            deadline: TimeSecs::from_secs(30.0),
            slo_bound: TimeSecs::from_secs(10.0),
            chunks: case.batch_chunks,
        },
        max_waves: 10_000,
    };
    let tenants_spec = [
        TenantSpec {
            name: "i".into(),
            class: SloClass::Interactive,
            pattern: ArrivalPattern::Poisson { rate_rps: 150.0 },
            requests: case.interactive_requests,
            rate_limit: if case.rate_limited {
                RateLimit::per_sec(30.0, 4.0)
            } else {
                RateLimit::unlimited()
            },
        },
        TenantSpec {
            name: "b".into(),
            class: SloClass::Batch,
            pattern: ArrivalPattern::Burst,
            requests: case.batch_requests,
            rate_limit: RateLimit::unlimited(),
        },
    ];
    let chaos = case.outage.map(|(start, end)| {
        ChaosSchedule::new(case.seed).with_outage(
            &[1],
            TimeSecs::from_secs(start),
            end.map(TimeSecs::from_secs),
        )
    });
    let report = cluster
        .serve_tenants(&tenants_spec, &config, chaos.as_ref(), None)
        .map_err(|e| format!("serve_tenants failed: {e:?}"))?;

    let submitted = case.interactive_requests + case.batch_requests;
    if report.submitted != submitted {
        return Err(format!(
            "submitted {} != offered {submitted}",
            report.submitted
        ));
    }
    if !report.conservation_holds() {
        return Err(format!(
            "conservation broken: submitted {} admitted {} completed {} \
             rejected {} shed-after {} pending {}",
            report.submitted,
            report.admitted,
            report.records.len(),
            report.rejected(),
            report.shed_after_admission(),
            report.pending,
        ));
    }
    // Every submit index appears exactly once across completions + sheds.
    let mut seen = vec![0usize; submitted];
    for r in &report.records {
        seen[r.submit] += 1;
    }
    for s in &report.shed {
        seen[s.submit] += 1;
    }
    if let Some(dup) = seen.iter().position(|&c| c != 1) {
        return Err(format!(
            "request {dup} accounted {} times (must be exactly once)",
            seen[dup]
        ));
    }
    // Timeline sanity on every completion.
    for r in &report.records {
        if r.arrival > r.admitted || r.admitted > r.first_token || r.first_token > r.completed {
            return Err(format!("non-monotonic record timeline: {r:?}"));
        }
    }
    // Sheds carry consistent admission flags.
    for s in &report.shed {
        let ingress = matches!(s.reason, ShedReason::RateLimited | ShedReason::QueueFull);
        if ingress && s.was_admitted {
            return Err(format!("ingress shed marked admitted: {s:?}"));
        }
        if s.reason == ShedReason::TimedOut && !s.was_admitted {
            return Err(format!("timeout shed of an unadmitted request: {s:?}"));
        }
    }
    Ok(())
}

/// The conservation property over generated scenarios: whatever mix of
/// rate limits, bounded queues, deadlines, preemption, and (possibly
/// permanent) outages a case throws at the engine, every request is
/// accounted exactly once and the report's arithmetic closes.
#[test]
fn conservation_holds_over_generated_chaos_scenarios() {
    check_cases(
        "tenancy conservation",
        CASES,
        0x7e4a_2c17,
        JOBS,
        generate_case,
        shrink_case,
        || (),
        |(), case| run_case(case),
    );
}
