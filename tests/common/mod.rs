//! Tiny in-repo property-testing harness: a seeded case generator plus a
//! fixed-iteration shrink loop. Deliberately dependency-free — the point
//! is seed-stable reproducibility, not distribution sophistication. A
//! failing case panics with the harness seed, the case index, and the
//! smallest still-failing case the shrinker found, so reproducing a
//! failure is one copy-paste.
//!
//! Cases run in fixed-size batches fanned across worker threads by the
//! ordered-merge engine (`sn_bench::par`). Batch boundaries depend only
//! on the case count — never on `jobs` or timing — and every batch gets
//! a fresh state from its factory, so the verdict (and the reported
//! minimal reproduction) is identical for every `jobs` value.

pub mod topology;

/// Deterministic splitmix64 case generator, seed-stable across runs and
/// platforms.
pub struct CaseRng {
    state: u64,
}

impl CaseRng {
    pub fn new(seed: u64) -> Self {
        CaseRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How many rounds the shrink loop runs before settling on the smallest
/// reproduction found so far. Fixed so a pathological shrinker cannot
/// spin a CI job forever.
const SHRINK_ITERATIONS: usize = 64;

/// Cases per worker batch. A constant — not derived from `jobs` — so the
/// state each case sees (its batch's fresh state, warmed by the batch's
/// earlier cases) is the same no matter how many threads run the batches.
const CASES_PER_BATCH: usize = 25;

/// Runs `property` over `cases` generated cases, in
/// [`CASES_PER_BATCH`]-sized batches fanned across `jobs` worker
/// threads. Cases are generated up front from one sequential `CaseRng`
/// stream; each batch evaluates against a fresh state from
/// `make_state`. On the earliest failing case the harness shrinks —
/// `shrink` proposes simpler candidates, the first one that still fails
/// (against a fresh state) becomes the new reproduction, for at most
/// [`SHRINK_ITERATIONS`] rounds — and panics with the minimal case and
/// both failure messages.
#[allow(clippy::too_many_arguments)] // four scalar knobs + four closures; a config struct would obscure the call sites
pub fn check_cases<C, S>(
    name: &str,
    cases: usize,
    seed: u64,
    jobs: usize,
    mut generate: impl FnMut(&mut CaseRng) -> C,
    shrink: impl Fn(&C) -> Vec<C>,
    make_state: impl Fn() -> S + Sync,
    property: impl Fn(&mut S, &C) -> Result<(), String> + Sync,
) where
    C: std::fmt::Debug + Clone + Send + Sync,
{
    let mut rng = CaseRng::new(seed);
    let all: Vec<C> = (0..cases).map(|_| generate(&mut rng)).collect();
    let batches: Vec<(usize, &[C])> = all
        .chunks(CASES_PER_BATCH.max(1))
        .enumerate()
        .map(|(b, chunk)| (b * CASES_PER_BATCH.max(1), chunk))
        .collect();
    // One slot per batch, merged in batch order: the earliest failing
    // batch's first failure is the one reported, whatever finished first.
    let failures = sn_bench::par::ordered_map(jobs, &batches, |_, &(start, chunk)| {
        let mut state = make_state();
        for (offset, case) in chunk.iter().enumerate() {
            if let Err(msg) = property(&mut state, case) {
                return Some((start + offset, case.clone(), msg));
            }
        }
        None
    });
    let Some((case_index, case, original_failure)) = failures.into_iter().flatten().next() else {
        return;
    };
    // Shrink: walk toward the simplest case that still fails, against a
    // state warmed only by earlier shrink candidates (fresh, like a
    // batch head — reproducible by construction).
    let mut state = make_state();
    let mut smallest = case.clone();
    let mut failure = original_failure.clone();
    'shrinking: for _ in 0..SHRINK_ITERATIONS {
        for candidate in shrink(&smallest) {
            if let Err(msg) = property(&mut state, &candidate) {
                smallest = candidate;
                failure = msg;
                continue 'shrinking;
            }
        }
        break; // No simpler candidate fails: fixed point reached.
    }
    panic!(
        "property '{name}' failed (seed {seed:#x}, case {case_index} of {cases})\n\
         original case: {case:?}\n  -> {original_failure}\n\
         shrunk case:   {smallest:?}\n  -> {failure}"
    );
}
