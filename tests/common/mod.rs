//! Tiny in-repo property-testing harness: a seeded case generator plus a
//! fixed-iteration shrink loop. Deliberately dependency-free — the point
//! is seed-stable reproducibility, not distribution sophistication. A
//! failing case panics with the harness seed, the case index, and the
//! smallest still-failing case the shrinker found, so reproducing a
//! failure is one copy-paste.

/// Deterministic splitmix64 case generator, seed-stable across runs and
/// platforms.
pub struct CaseRng {
    state: u64,
}

impl CaseRng {
    pub fn new(seed: u64) -> Self {
        CaseRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How many rounds the shrink loop runs before settling on the smallest
/// reproduction found so far. Fixed so a pathological shrinker cannot
/// spin a CI job forever.
const SHRINK_ITERATIONS: usize = 64;

/// Runs `property` over `cases` generated cases. On the first failure the
/// case is shrunk — `shrink` proposes simpler candidates, the first one
/// that still fails becomes the new reproduction, for at most
/// [`SHRINK_ITERATIONS`] rounds — and the harness panics with the minimal
/// case and both failure messages.
pub fn check_cases<C: std::fmt::Debug + Clone>(
    name: &str,
    cases: usize,
    seed: u64,
    mut generate: impl FnMut(&mut CaseRng) -> C,
    shrink: impl Fn(&C) -> Vec<C>,
    mut property: impl FnMut(&C) -> Result<(), String>,
) {
    let mut rng = CaseRng::new(seed);
    for case_index in 0..cases {
        let case = generate(&mut rng);
        let Err(original_failure) = property(&case) else {
            continue;
        };
        // Shrink: walk toward the simplest case that still fails.
        let mut smallest = case.clone();
        let mut failure = original_failure.clone();
        'shrinking: for _ in 0..SHRINK_ITERATIONS {
            for candidate in shrink(&smallest) {
                if let Err(msg) = property(&candidate) {
                    smallest = candidate;
                    failure = msg;
                    continue 'shrinking;
                }
            }
            break; // No simpler candidate fails: fixed point reached.
        }
        panic!(
            "property '{name}' failed (seed {seed:#x}, case {case_index} of {cases})\n\
             original case: {case:?}\n  -> {original_failure}\n\
             shrunk case:   {smallest:?}\n  -> {failure}"
        );
    }
}
