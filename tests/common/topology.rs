//! [`CaseRng`]-driven random cluster topologies, shared by every
//! property suite that wants "some plausible cluster" rather than one
//! hand-picked shape: node counts, expert placements (round-robin,
//! grown, rebalanced, or degraded by a pre-failed node), and paged-KV
//! HBM budgets all vary per case. The `intra_diff` differential harness
//! sweeps these against every `intra_jobs` value, and the tenancy/serve
//! suites reuse the same generator so their invariants are proven over
//! the same topology space.
//!
//! Shrinking follows the harness convention (`check_cases` runs a fixed
//! number of rounds): each step proposes strictly simpler topologies —
//! fewer nodes, fewer experts, no growth, no failure — so a minimal
//! reproduction is a small, undamaged cluster.

// Each consuming suite uses its own subset of the generator surface.
#![allow(dead_code)]

use super::CaseRng;
use sn_arch::{Bytes, NodeSpec};
use sn_coe::{CoeCluster, ExpertLibrary, PagedKvConfig, SambaCoeNode};

/// One generated cluster shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterTopology {
    /// Nodes at build time (at least 2, so one can die and capacity
    /// remains).
    pub nodes: usize,
    /// Experts in the library (bounded per node so every shard fits its
    /// node's DDR).
    pub experts: usize,
    /// Prompt length the prefill/decode graphs compile for.
    pub prompt_tokens: usize,
    /// Nodes added after build — their experts arrive only via the
    /// rebalance below, so growth without rebalance leaves them empty.
    pub grown_nodes: usize,
    /// Whether to rebalance expert homes after growing (moves placement
    /// off the constructor's round-robin).
    pub rebalanced: bool,
    /// A node failed before serving starts, if any (always leaves at
    /// least one healthy node).
    pub failed_node: Option<usize>,
    /// Paged-KV HBM budget, in 1 MiB pages.
    pub kv_budget_pages: u64,
}

impl ClusterTopology {
    /// Draws a topology. Every draw builds successfully: experts are
    /// bounded per node, the failed node index is in range, and the KV
    /// budget holds at least one page.
    pub fn generate(rng: &mut CaseRng) -> ClusterTopology {
        let nodes = rng.usize_in(2, 6);
        let experts = nodes * rng.usize_in(6, 25);
        let prompt_tokens = [128, 256, 512][rng.usize_in(0, 3)];
        let grown_nodes = rng.usize_in(0, 3);
        let rebalanced = rng.f64() < 0.5;
        let failed_node = if rng.f64() < 0.35 {
            Some(rng.usize_in(0, nodes + grown_nodes))
        } else {
            None
        };
        ClusterTopology {
            nodes,
            experts,
            prompt_tokens,
            grown_nodes,
            rebalanced,
            failed_node,
            kv_budget_pages: rng.usize_in(1, 65) as u64,
        }
    }

    /// Strictly simpler variants for the shrink loop: shed damage and
    /// growth first, then shrink the cluster and the library.
    pub fn shrink(&self) -> Vec<ClusterTopology> {
        let mut out = Vec::new();
        if self.failed_node.is_some() {
            out.push(ClusterTopology {
                failed_node: None,
                ..*self
            });
        }
        if self.rebalanced {
            out.push(ClusterTopology {
                rebalanced: false,
                ..*self
            });
        }
        if self.grown_nodes > 0 {
            out.push(ClusterTopology {
                grown_nodes: self.grown_nodes - 1,
                failed_node: self
                    .failed_node
                    .filter(|&f| f < self.nodes + self.grown_nodes - 1),
                ..*self
            });
        }
        if self.nodes > 2 {
            out.push(ClusterTopology {
                nodes: self.nodes - 1,
                failed_node: self
                    .failed_node
                    .filter(|&f| f < self.nodes + self.grown_nodes - 1),
                ..*self
            });
        }
        if self.experts > 2 {
            out.push(ClusterTopology {
                experts: self.experts / 2,
                ..*self
            });
        }
        out
    }

    /// Builds the cluster at `intra_jobs` worker lanes: constructs,
    /// grows, rebalances, and applies the pre-run failure, in that
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the library cannot be placed — impossible for
    /// generated topologies (the expert count is bounded per node).
    pub fn build_jobs(&self, intra_jobs: usize) -> CoeCluster {
        let mut cluster = CoeCluster::new(
            NodeSpec::sn40l_node(),
            self.nodes,
            ExpertLibrary::new(self.experts),
            self.prompt_tokens,
        )
        .expect("generated topologies always fit")
        .with_intra_jobs(intra_jobs);
        for _ in 0..self.grown_nodes {
            cluster.add_node();
        }
        if self.rebalanced {
            cluster.rebalance_experts();
        }
        if let Some(node) = self.failed_node {
            cluster.fail_node(node);
        }
        cluster
    }

    /// [`ClusterTopology::build_jobs`] on the sequential reference path.
    pub fn build(&self) -> CoeCluster {
        self.build_jobs(1)
    }

    /// A single [`SambaCoeNode`] with this topology's library and
    /// prompt length, for node-level suites (the cluster-only fields —
    /// growth, failure — don't apply).
    pub fn build_node(&self) -> SambaCoeNode {
        SambaCoeNode::new(
            NodeSpec::sn40l_node(),
            ExpertLibrary::new(self.experts),
            self.prompt_tokens,
        )
    }

    /// The paged-KV geometry this topology budgets: 1 MiB, 16-token
    /// pages under `kv_budget_pages` total.
    pub fn kv_config(&self) -> PagedKvConfig {
        PagedKvConfig {
            page_tokens: 16,
            page_bytes: Bytes::from_mib(1),
            budget: Bytes::from_mib(self.kv_budget_pages),
        }
    }

    /// Total node count after growth.
    pub fn total_nodes(&self) -> usize {
        self.nodes + self.grown_nodes
    }
}
