//! Surrogate feature-extraction properties: over hundreds of generated
//! sweep-point configurations — grown/degraded cluster topologies, empty
//! waves, all-shed tenant mixes, single-node clusters, zero-chaos
//! schedules, inverted chaos windows — extraction is *total* (every
//! feature finite, every base-model metric finite and physically
//! clamped) and *deterministic* (byte-identical on re-extraction), so
//! the calibrated grid in `repro surrogate` can never be poisoned by a
//! NaN feature or a run-order dependence.

mod common;

use common::topology::ClusterTopology;
use common::{check_cases, CaseRng};
use sn_arch::{NodeSpec, TimeSecs};
use sn_surrogate::{expected_misses, extract, predict_base, total_chunks, ChaosSummary, SweepSpec};

const CASES: usize = 250;
const JOBS: usize = 4;
const SEED: u64 = 0x5ee9_57a7_e001;

/// Draws a sweep-point spec, reusing the shared topology generator for
/// the cluster shape and layering the surrogate-specific knobs on top.
/// Roughly one case in eight lands in each deliberate edge regime.
fn generate_spec(rng: &mut CaseRng) -> SweepSpec {
    let topo = ClusterTopology::generate(rng);
    let nodes = if rng.usize_in(0, 8) == 0 {
        1 // single-node cluster
    } else {
        topo.nodes + topo.grown_nodes
    };
    let (interactive_requests, batch_requests) = if rng.usize_in(0, 8) == 0 {
        (0, 0) // empty waves: nothing offered at all
    } else {
        (rng.usize_in(0, 240), rng.usize_in(0, 120))
    };
    // All-shed tenants: requests offered, but the admission queues and
    // deadlines are so tight every one of them sheds in the exact run.
    let all_shed = rng.usize_in(0, 8) == 0;
    let chaos = match rng.usize_in(0, 4) {
        0 => None,
        1 => Some(ChaosSummary {
            // A scheduled-but-inert chaos pass: zero-duration windows,
            // zero rates. Must behave exactly like a quiet fabric.
            outage_nodes: 0,
            outage_start: TimeSecs::ZERO,
            outage_end: TimeSecs::ZERO,
            fabric_end: TimeSecs::ZERO,
            fail_rate: 0.0,
            slow_rate: 0.0,
            slow_factor: 1.0,
        }),
        _ => {
            let start = rng.f64() * 10.0;
            let end = rng.f64() * 10.0; // may invert: extraction clamps
            Some(ChaosSummary {
                outage_nodes: rng.usize_in(0, nodes + 2),
                outage_start: TimeSecs::from_secs(start),
                outage_end: TimeSecs::from_secs(end),
                fabric_end: TimeSecs::from_secs(rng.f64() * 12.0),
                fail_rate: rng.f64(),
                slow_rate: rng.f64(),
                slow_factor: rng.f64() * 4.0,
            })
        }
    };
    SweepSpec {
        nodes,
        per_node_slots: rng.usize_in(1, 9),
        experts: topo.experts,
        prompt_tokens: topo.prompt_tokens,
        wave_tokens: [1, 8, 16][rng.usize_in(0, 3)],
        interactive_requests,
        batch_requests,
        interactive_chunks: rng.usize_in(0, 4),
        batch_chunks: rng.usize_in(0, 8),
        interactive_queue_cap: if all_shed { 1 } else { rng.usize_in(1, 129) },
        batch_queue_cap: if all_shed { 1 } else { rng.usize_in(1, 513) },
        interactive_deadline: if all_shed {
            TimeSecs::ZERO
        } else {
            TimeSecs::from_secs(0.5 + rng.f64() * 4.0)
        },
        interactive_slo: TimeSecs::from_secs(rng.f64() * 2.0),
        batch_deadline: if all_shed {
            TimeSecs::ZERO
        } else {
            TimeSecs::from_secs(5.0 + rng.f64() * 40.0)
        },
        batch_slo: TimeSecs::from_secs(rng.f64() * 15.0),
        arrival_span: if rng.usize_in(0, 4) == 0 {
            TimeSecs::ZERO // pure backlog
        } else {
            TimeSecs::from_secs(rng.f64() * 2.0)
        },
        load: rng.f64() * 8.0,
        policies: rng.f64() < 0.5,
        chaos,
    }
}

/// Strictly simpler specs for the shrink loop: shed chaos and load
/// first, then collapse the cluster and the library.
fn shrink_spec(spec: &SweepSpec) -> Vec<SweepSpec> {
    let mut out = Vec::new();
    if spec.chaos.is_some() {
        out.push(SweepSpec {
            chaos: None,
            ..*spec
        });
    }
    if spec.interactive_requests + spec.batch_requests > 0 {
        out.push(SweepSpec {
            interactive_requests: 0,
            batch_requests: 0,
            ..*spec
        });
    }
    if spec.nodes > 1 {
        out.push(SweepSpec { nodes: 1, ..*spec });
    }
    if spec.experts > 1 {
        out.push(SweepSpec {
            experts: 1,
            ..*spec
        });
    }
    out
}

#[test]
fn extraction_is_total_and_deterministic_over_generated_specs() {
    check_cases(
        "surrogate extraction total + deterministic",
        CASES,
        SEED,
        JOBS,
        generate_spec,
        shrink_spec,
        NodeSpec::sn40l_node,
        |node, spec| {
            let features = extract(spec, node);
            if !features.all_finite() {
                return Err(format!("non-finite feature vector: {features:?}"));
            }
            if extract(spec, node) != features {
                return Err("re-extraction changed the feature vector".to_string());
            }

            let base = predict_base(spec, node);
            if !base.all_finite() {
                return Err(format!("non-finite base prediction: {base:?}"));
            }
            if predict_base(spec, node) != base {
                return Err("re-prediction changed the base metrics".to_string());
            }
            if base.values.iter().any(|&v| v < 0.0) {
                return Err(format!("negative base metric: {base:?}"));
            }
            let hit = base.get("hbm_hit_rate").expect("metric exists");
            let switch_bound = base.get("switch_bound_fraction").expect("metric exists");
            if !(0.0..=1.0).contains(&hit) || !(0.0..=1.0).contains(&switch_bound) {
                return Err(format!(
                    "fraction metric out of [0, 1]: hit {hit}, switch-bound {switch_bound}"
                ));
            }

            let misses = expected_misses(spec, node);
            let chunks = total_chunks(spec);
            if !misses.is_finite() || misses < 0.0 || misses > chunks + 1e-9 {
                return Err(format!("expected misses {misses} outside [0, {chunks}]"));
            }
            Ok(())
        },
    );
}
