//! The paper's headline claims, checked end to end against the
//! reproduction (shape, not absolute numbers — see EXPERIMENTS.md).

use samba_coe::arch::prelude::*;
use samba_coe::baseline::{dgx_nodes_needed, sn40l_nodes_needed};
use samba_coe::coe::comparison::{ComparisonModel, Platform};
use samba_coe::coe::ExpertLibrary;
use samba_coe::dataflow::intensity::{fusion_levels, FusionLevel};
use samba_coe::dataflow::monarch::monarch_fig3;

/// §I: "Samba-CoE, a CoE system with 150 experts and a trillion total
/// parameters."
#[test]
fn trillion_parameter_coe() {
    let lib = ExpertLibrary::samba_coe_150();
    assert_eq!(lib.len(), 150);
    assert!(lib.total_params() > 1_000_000_000_000);
}

/// §I/Table III: "reduces machine footprint by up to 19x."
#[test]
fn footprint_reduction_19x() {
    let expert = TransformerConfigBytes::expert();
    let sn = sn40l_nodes_needed(&NodeSpec::sn40l_node(), 850, expert);
    let dgx = dgx_nodes_needed(&DgxSpec::dgx_a100(), 850, expert);
    assert_eq!(sn, 1);
    assert_eq!(dgx, 19);
}

/// §I/Table III: "speeds up model switching time by 15x to 31x."
#[test]
fn switching_speedup_15x_to_31x() {
    let model = ComparisonModel::new(1024);
    let sn = model
        .request_latency(Platform::Sn40l, 150, 8, 20)
        .unwrap()
        .switching;
    let a = model
        .request_latency(Platform::DgxA100, 150, 8, 20)
        .unwrap()
        .switching;
    let h = model
        .request_latency(Platform::DgxH100, 150, 8, 20)
        .unwrap()
        .switching;
    let va = a / sn;
    let vh = h / sn;
    assert!((26.0..=36.0).contains(&va), "vs A100: {va:.1}x (paper 31x)");
    assert!((13.0..=19.0).contains(&vh), "vs H100: {vh:.1}x (paper 15x)");
}

/// §I/Table III: "achieves an overall speedup of 3.7x over a DGX H100 and
/// 6.6x over a DGX A100" (BS=8, 20 output tokens).
#[test]
fn overall_speedup_vs_dgx() {
    let model = ComparisonModel::new(1024);
    let t = |p| model.request_latency(p, 150, 8, 20).unwrap().total();
    let sn = t(Platform::Sn40l);
    let va = t(Platform::DgxA100) / sn;
    let vh = t(Platform::DgxH100) / sn;
    assert!((5.0..=10.0).contains(&va), "vs A100: {va:.1}x (paper 6.6x)");
    assert!((3.0..=6.0).contains(&vh), "vs H100: {vh:.1}x (paper 3.7x)");
    assert!(va > vh, "A100 gap exceeds H100 gap");
}

/// §VI-B: "DGXs run out of memory at 150 experts" while "a single SN40L
/// Node can hold and serve a CoE of up to 850 experts."
#[test]
fn oom_boundaries() {
    let model = ComparisonModel::new(1024);
    for p in [Platform::DgxA100, Platform::DgxH100] {
        assert!(model.max_experts(p) >= 150, "{p:?} hosts 150");
        assert!(model.max_experts(p) < 160, "{p:?} dies shortly after 150");
    }
    assert!(model.max_experts(Platform::Sn40l) >= 850);
}

/// Table I: fusion moves the Monarch FFT example from memory-bound to
/// compute-bound on an A100-class roofline.
#[test]
fn table1_regime_transition() {
    let levels = fusion_levels(&monarch_fig3());
    let balance = GpuSpec::a100().balance();
    assert!(levels[&FusionLevel::None] < balance);
    assert!(levels[&FusionLevel::Partial] < balance);
    assert!(levels[&FusionLevel::Full] > balance);
}

/// §IV: the chip-level aggregates the paper states.
#[test]
fn sn40l_headline_specs() {
    let socket = SocketSpec::sn40l();
    assert!((socket.peak_bf16().as_tflops() - 638.0).abs() < 2.0);
    assert_eq!(socket.chip.pcus, 1040);
    assert_eq!(socket.chip.pmus, 1040);
    assert_eq!(socket.chip.total_sram(), Bytes::from_mib(520));
    assert_eq!(socket.hbm.capacity, Bytes::from_gib(64));
    assert_eq!(
        socket.ddr.capacity,
        Bytes::from_tib(1) + Bytes::from_gib(512)
    );
    let node = NodeSpec::sn40l_node();
    assert!(
        node.model_switch_bandwidth().as_tb_per_s() > 1.0,
        "over 1 TB/s DDR->HBM"
    );
}

/// Helper so the footprint test reads like the paper's arithmetic.
struct TransformerConfigBytes;

impl TransformerConfigBytes {
    fn expert() -> Bytes {
        samba_coe::models::TransformerConfig::llama2_7b().param_bytes()
    }
}
