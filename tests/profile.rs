//! Profiling guarantees: the roofline attribution reproduces the paper's
//! bottleneck story deterministically, the SLO dashboard rides along
//! without perturbing timing, and the benchmark snapshot round-trips and
//! catches regressions.

use samba_coe::coe::{ExpertLibrary, PromptGenerator, SambaCoeNode};
use samba_coe::profile::{BenchSnapshot, Bound, CompareStatus, PhaseKind, SloConfig};
use samba_coe::trace::Tracer;
use sn_arch::NodeSpec;
use sn_bench::profile::{bench_snapshot, profiled_fig12_run};

/// The Figure 12 point must classify exactly as §V-B/§VI-B describe:
/// expert switching starves on DDR bandwidth, token-by-token decode on
/// HBM bandwidth, and fused prefill runs up against the compute roof.
#[test]
fn attribution_reproduces_the_papers_bottleneck_story() {
    let run = profiled_fig12_run(150, 8, 2);
    let bound = |k| run.attribution.phase(k).expect("phase sampled").bound;
    assert_eq!(bound(PhaseKind::Switching), Bound::DdrBandwidth);
    assert_eq!(bound(PhaseKind::Decode), Bound::HbmBandwidth);
    assert_eq!(bound(PhaseKind::Prefill), Bound::Compute);
    let fractions: f64 = run.attribution.phases.iter().map(|p| p.fraction).sum();
    assert!(
        (fractions - 1.0).abs() < 1e-9,
        "fractions partition the batch"
    );
    assert_eq!(run.attribution.total, run.report.total());
}

/// Same seed, same parameters — the attribution, SLO snapshot, and
/// serialized benchmark snapshot must be bit-identical across runs.
#[test]
fn profiling_is_deterministic() {
    let a = profiled_fig12_run(150, 8, 3);
    let b = profiled_fig12_run(150, 8, 3);
    assert_eq!(a.attribution, b.attribution);
    assert_eq!(a.report.slo, b.report.slo);
    assert_eq!(bench_snapshot().to_json(), bench_snapshot().to_json());
}

/// Attaching the SLO tracker must not change a single reported time:
/// observation happens strictly after the timing arithmetic.
#[test]
fn slo_tracking_does_not_perturb_serving_latency() {
    let spec = NodeSpec::sn40l_node();
    let mut plain = SambaCoeNode::new(spec.clone(), ExpertLibrary::new(150), 1024);
    let mut tracked = SambaCoeNode::new(spec, ExpertLibrary::new(150), 1024)
        .with_tracer(Tracer::enabled())
        .with_slo(SloConfig::default());
    let mut gen_a = PromptGenerator::new(0x5eed, 1024);
    let mut gen_b = PromptGenerator::new(0x5eed, 1024);
    for _ in 0..3 {
        let a = plain.serve_batch(&gen_a.batch(8), 20);
        let b = tracked.serve_batch(&gen_b.batch(8), 20);
        assert_eq!(a.total(), b.total(), "SLO tracking must be free");
        assert_eq!(a.router, b.router);
        assert_eq!(a.switching, b.switching);
        assert_eq!(a.execution, b.execution);
        let slo = b.slo.expect("tracker attached");
        assert!(slo.batch_latency_p50 <= slo.batch_latency_p99);
        assert!(slo.ttft_p99 <= slo.batch_latency_p99);
    }
}

/// The snapshot must survive its own JSON (parse ∘ serialize = identity),
/// self-compare clean, and flag an injected drift as a regression.
#[test]
fn snapshot_roundtrips_and_catches_regressions() {
    let base = bench_snapshot();
    let parsed = BenchSnapshot::from_json(&base.to_json()).expect("own JSON parses");
    assert_eq!(base, parsed);
    assert!(base.compare(&parsed).passed(), "identity compare is clean");

    let mut drifted = base.clone();
    let m = drifted
        .metrics
        .iter_mut()
        .find(|m| m.key == "fig12.bs8.sn40l_ms")
        .expect("tracked metric present");
    if let samba_coe::profile::MetricValue::Num(v) = &mut m.value {
        *v *= 1.10; // 10% drift against a 2% tolerance
    }
    let report = base.compare(&drifted);
    assert!(!report.passed());
    assert!(report
        .rows
        .iter()
        .any(|r| r.key == "fig12.bs8.sn40l_ms" && r.status == CompareStatus::Regressed));
}

/// A metric deleted from the current run is a failure (Missing), while a
/// metric added to the current run is informational (New).
#[test]
fn missing_metrics_fail_and_new_metrics_do_not() {
    let base = bench_snapshot();
    let mut current = base.clone();
    current.metrics.retain(|m| m.key != "serve.total_ms");
    current.push_num("brand.new.metric", 1.0, "x", 0.0);
    let report = base.compare(&current);
    assert_eq!(report.regressions(), 1, "only the missing metric fails");
    assert!(report
        .rows
        .iter()
        .any(|r| r.key == "serve.total_ms" && r.status == CompareStatus::Missing));
    assert!(report
        .rows
        .iter()
        .any(|r| r.key == "brand.new.metric" && r.status == CompareStatus::New));
}
